//! A timestamp-ordered mailbox: packets become visible at `deliver_at`.
//!
//! A binary heap keyed on `(deliver_at, seq)` keeps deliveries in
//! simulated-arrival order even when messages with different injected
//! latencies interleave. Receivers block on a condvar and spin briefly
//! near the head packet's due time for sub-sleep-granularity accuracy.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::{NetError, NodeId};

struct Packet<M> {
    deliver_at: Instant,
    seq: u64,
    from: NodeId,
    msg: M,
}

impl<M> PartialEq for Packet<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Packet<M> {}
impl<M> PartialOrd for Packet<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Packet<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

pub(crate) struct Mailbox<M> {
    heap: Mutex<BinaryHeap<Packet<M>>>,
    cond: Condvar,
    seq: AtomicU64,
    closed: AtomicBool,
    // Mirror of heap.len(), kept so stats paths (`len`) never contend on
    // the heap lock. Updated while holding the lock, read lock-free; the
    // value is advisory and may lag a concurrent push/pop by one.
    count: AtomicUsize,
}

impl<M> Mailbox<M> {
    pub(crate) fn new() -> Arc<Mailbox<M>> {
        Arc::new(Mailbox {
            heap: Mutex::new(BinaryHeap::new()),
            cond: Condvar::new(),
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            count: AtomicUsize::new(0),
        })
    }

    pub(crate) fn push(&self, from: NodeId, msg: M, deliver_at: Instant) {
        if self.closed.load(AtomicOrdering::Acquire) {
            return; // Messages to a dead node vanish.
        }
        let seq = self.seq.fetch_add(1, AtomicOrdering::Relaxed);
        let mut heap = self.heap.lock();
        heap.push(Packet {
            deliver_at,
            seq,
            from,
            msg,
        });
        self.count.store(heap.len(), AtomicOrdering::Relaxed);
        drop(heap);
        self.cond.notify_one();
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, AtomicOrdering::Release);
        self.heap.lock().clear();
        self.count.store(0, AtomicOrdering::Relaxed);
        self.cond.notify_all();
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(AtomicOrdering::Acquire)
    }

    /// Blocking receive with an optional deadline.
    pub(crate) fn recv(&self, timeout: Option<Duration>) -> Result<(NodeId, M), NetError> {
        let deadline = timeout.map(|t| crate::clock::now() + t);
        let mut heap = self.heap.lock();
        loop {
            if self.closed.load(AtomicOrdering::Acquire) {
                return Err(NetError::Closed);
            }
            let now = crate::clock::now();
            if let Some(head) = heap.peek() {
                if head.deliver_at <= now {
                    let p = heap.pop().expect("peeked");
                    self.count.store(heap.len(), AtomicOrdering::Relaxed);
                    return Ok((p.from, p.msg));
                }
                // Head not due yet; wait until it is (or new mail).
                let due = head.deliver_at;
                let wait_until = match deadline {
                    Some(d) if d < due => d,
                    _ => due,
                };
                if self.cond.wait_until(&mut heap, wait_until).timed_out()
                    && Some(wait_until) == deadline
                    && heap
                        .peek()
                        .map(|h| h.deliver_at > crate::clock::now())
                        .unwrap_or(true)
                {
                    return Err(NetError::Timeout);
                }
            } else {
                match deadline {
                    Some(d) => {
                        if self.cond.wait_until(&mut heap, d).timed_out() && heap.is_empty() {
                            return Err(NetError::Timeout);
                        }
                    }
                    None => {
                        self.cond.wait(&mut heap);
                    }
                }
            }
        }
    }

    /// Non-blocking receive: returns a due packet if one exists.
    pub(crate) fn try_recv(&self) -> Result<Option<(NodeId, M)>, NetError> {
        if self.closed.load(AtomicOrdering::Acquire) {
            return Err(NetError::Closed);
        }
        let mut heap = self.heap.lock();
        if let Some(head) = heap.peek() {
            if head.deliver_at <= crate::clock::now() {
                let p = heap.pop().expect("peeked");
                self.count.store(heap.len(), AtomicOrdering::Relaxed);
                return Ok(Some((p.from, p.msg)));
            }
        }
        Ok(None)
    }

    /// Number of queued (not necessarily due) packets.
    ///
    /// Lock-free: reads a relaxed mirror of the heap size so stats paths
    /// never contend with senders/receivers for the heap lock.
    pub(crate) fn len(&self) -> usize {
        self.count.load(AtomicOrdering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_timestamp_order() {
        let mb = Mailbox::new();
        let now = Instant::now();
        mb.push(1, "late", now + Duration::from_millis(5));
        mb.push(2, "early", now);
        let (from, msg) = mb.recv(Some(Duration::from_secs(1))).unwrap();
        assert_eq!((from, msg), (2, "early"));
        let (from, msg) = mb.recv(Some(Duration::from_secs(1))).unwrap();
        assert_eq!((from, msg), (1, "late"));
    }

    #[test]
    fn ties_break_by_arrival_sequence() {
        let mb = Mailbox::new();
        let at = Instant::now();
        mb.push(1, 10u32, at);
        mb.push(1, 20u32, at);
        mb.push(1, 30u32, at);
        assert_eq!(mb.recv(None).unwrap().1, 10);
        assert_eq!(mb.recv(None).unwrap().1, 20);
        assert_eq!(mb.recv(None).unwrap().1, 30);
    }

    #[test]
    fn timeout_on_empty() {
        let mb: Arc<Mailbox<()>> = Mailbox::new();
        let start = Instant::now();
        let r = mb.recv(Some(Duration::from_millis(10)));
        assert_eq!(r.unwrap_err(), NetError::Timeout);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn timeout_respects_undue_head() {
        let mb = Mailbox::new();
        mb.push(1, (), Instant::now() + Duration::from_secs(60));
        let r = mb.recv(Some(Duration::from_millis(10)));
        assert_eq!(r.unwrap_err(), NetError::Timeout);
    }

    #[test]
    fn try_recv_sees_only_due_packets() {
        let mb = Mailbox::new();
        mb.push(1, "future", Instant::now() + Duration::from_secs(60));
        assert_eq!(mb.try_recv().unwrap(), None);
        mb.push(2, "now", Instant::now());
        assert_eq!(mb.try_recv().unwrap(), Some((2, "now")));
    }

    #[test]
    fn close_wakes_waiters_and_drops_mail() {
        let mb = Mailbox::new();
        mb.push(1, 1u8, Instant::now());
        mb.close();
        assert!(mb.is_closed());
        assert_eq!(mb.recv(None).unwrap_err(), NetError::Closed);
        // Pushes after close vanish.
        mb.push(1, 2u8, Instant::now());
        assert_eq!(mb.len(), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let mb = Mailbox::new();
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            mb2.push(7, 99u64, Instant::now());
        });
        let (from, msg) = mb.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!((from, msg), (7, 99));
        t.join().unwrap();
    }
}
