//! A simulated RDMA fabric for in-process distributed-systems experiments.
//!
//! This crate is the reproduction's stand-in for the Ring paper's
//! InfiniBand/`libibverbs` layer. Nodes are threads inside one process;
//! the fabric gives each registered node an [`Endpoint`] with:
//!
//! - **Two-sided messaging** ([`Endpoint::send`] / [`Endpoint::recv`]):
//!   typed messages delivered through a timestamp-ordered mailbox, with a
//!   per-fabric [`LatencyModel`] injecting calibrated wire + NIC delays.
//! - **One-sided verbs** ([`Endpoint::rdma_read`] / [`Endpoint::rdma_write`]):
//!   direct access to a remote node's registered [`MemoryRegion`]s without
//!   involving the remote CPU — the caller pays the round-trip latency,
//!   the target thread is never scheduled, mirroring real RDMA semantics.
//! - **Failure injection** ([`Fabric::kill`]): a killed node's mailbox and
//!   memory regions vanish; messages sent to it are silently dropped (the
//!   sender must rely on timeouts, as on a real network) and one-sided
//!   ops report [`NetError::Unreachable`].
//! - **Traffic statistics** ([`Endpoint::stats`]): message/byte counters
//!   used by the benchmark harness to report network load.
//!
//! Sub-microsecond delays are implemented by spin-waiting, which is
//! faithful to how RDMA completion queues are actually polled
//! (`ibv_poll_cq` busy-polls); delays above ~100µs use `thread::sleep`.
//!
//! # Examples
//!
//! ```
//! use ring_net::{Fabric, LatencyModel, WireSize};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Ping(u64);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize { 8 }
//! }
//!
//! let fabric = Fabric::<Ping>::new(LatencyModel::instant());
//! let a = fabric.register(0).unwrap();
//! let b = fabric.register(1).unwrap();
//! a.send(1, Ping(42)).unwrap();
//! let (from, msg) = b.recv().unwrap();
//! assert_eq!((from, msg), (0, Ping(42)));
//! ```

pub mod clock;
mod endpoint;
mod error;
mod fabric;
mod fault;
pub mod frame;
mod latency;
mod mailbox;
mod memory;
mod payload;
mod stats;
mod tcp;
mod transport;

pub use endpoint::Endpoint;
pub use error::NetError;
pub use fabric::Fabric;
pub use fault::{FaultAction, FaultInjector, NoFaults};
pub use frame::{Codec, FrameBuf, FrameKind, WireReader};
pub use latency::{spin_wait, LatencyModel};
pub use memory::{MemoryRegion, MrKey};
pub use payload::Payload;
pub use stats::{NetStats, NetStatsSnapshot};
pub use tcp::{TcpOptions, TcpTransport};
pub use transport::Transport;

/// Node identifier on a fabric.
pub type NodeId = u32;

/// Messages carried by the fabric must report their on-wire size so the
/// latency model can charge per-byte transmission time.
pub trait WireSize {
    /// Size of the message on the wire, in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSize for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}
