//! Pluggable message-level fault injection on the delivery path.
//!
//! A [`FaultInjector`] installed on a [`crate::Fabric`] is consulted for
//! every two-sided message a live endpoint sends over an up link, and
//! decides the message's fate: deliver it normally, drop it, delay it by
//! an extra amount (delayed messages overtake later ones, so reordering
//! falls out of delaying), or deliver it twice. Node crashes and
//! partitions are *not* expressed here — [`crate::Fabric::kill`] and
//! [`crate::Fabric::fail_link`] already model those; an injector handles
//! the per-message faults that coarse topology changes cannot.
//!
//! Injectors must be deterministic functions of their own state and the
//! `(from, to, wire_bytes)` arguments if runs are to be reproducible —
//! the seeded `FaultPlan` in `ring-chaos` is the canonical
//! implementation.

use std::time::Duration;

use crate::NodeId;

/// The fate of one message, decided by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally, after the fabric's modelled latency.
    Deliver,
    /// Silently drop the message (the sender still counts it as sent).
    Drop,
    /// Deliver after the modelled latency *plus* this extra delay.
    /// Messages sent later can arrive earlier: this is how reordering
    /// is injected.
    Delay(Duration),
    /// Deliver one copy normally and a second copy after this extra
    /// delay — a retransmission race, as seen by the receiver.
    Duplicate(Duration),
}

/// A fault policy consulted on every message send.
///
/// Implementations are shared across all sending threads and must be
/// `Send + Sync`; any internal state (per-link sequence counters, a
/// seeded schedule) must be interior-mutable.
pub trait FaultInjector: Send + Sync {
    /// Decides the fate of one message of `wire_bytes` bytes going from
    /// `from` to `to`.
    fn on_message(&self, from: NodeId, to: NodeId, wire_bytes: usize) -> FaultAction;
}

/// Injector that delivers everything (the absence of faults).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn on_message(&self, _from: NodeId, _to: NodeId, _wire_bytes: usize) -> FaultAction {
        FaultAction::Deliver
    }
}
