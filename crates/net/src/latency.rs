//! Latency models for the simulated fabric.

use std::time::Duration;

/// Threshold below which delays spin instead of sleeping: `thread::sleep`
/// on Linux has tens-of-microseconds granularity, far coarser than an
/// RDMA hop.
const SPIN_THRESHOLD: Duration = Duration::from_micros(100);

/// A per-hop latency model: `delay = base + per_byte * bytes`.
///
/// The presets are calibrated so the *relative* costs of the paper's
/// transports hold: an RDMA hop is ~1.5µs, a kernel-TCP hop (memcached)
/// is ~25µs, and an HDD-backed commit adds ~40µs (RAMCloud-style
/// disk-backed replication).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-message cost (propagation + NIC processing).
    pub base: Duration,
    /// Transmission cost in nanoseconds per byte.
    pub per_byte_ns: u64,
}

impl LatencyModel {
    /// No injected latency: messages are delivered as fast as the host
    /// allows. Useful for unit tests.
    pub fn instant() -> LatencyModel {
        LatencyModel {
            base: Duration::ZERO,
            per_byte_ns: 0,
        }
    }

    /// A QDR InfiniBand RDMA hop: ~1.5µs base, 40Gb/s line rate
    /// (0.2ns/byte at ~5GB/s).
    pub fn rdma() -> LatencyModel {
        LatencyModel {
            base: Duration::from_nanos(1_500),
            per_byte_ns: 1, // Conservative: ~1GB/s effective per flow.
        }
    }

    /// A kernel TCP/IP hop over the same wire (memcached's transport):
    /// syscall + stack traversal dominate at ~25µs per hop.
    pub fn tcp_kernel() -> LatencyModel {
        LatencyModel {
            base: Duration::from_micros(25),
            per_byte_ns: 1,
        }
    }

    /// An HDD-backed commit hop (RAMCloud-style disk-backed backup):
    /// RDMA wire latency plus a ~40µs buffered-write penalty.
    pub fn hdd_commit() -> LatencyModel {
        LatencyModel {
            base: Duration::from_micros(40),
            per_byte_ns: 1,
        }
    }

    /// The one-way delay for a message of `bytes` bytes.
    pub fn delay(&self, bytes: usize) -> Duration {
        self.base + Duration::from_nanos(self.per_byte_ns.saturating_mul(bytes as u64))
    }

    /// The round-trip delay for a one-sided operation moving `bytes`
    /// bytes (request hop + payload-bearing hop).
    pub fn round_trip(&self, bytes: usize) -> Duration {
        self.base + self.delay(bytes)
    }
}

/// Waits for `d`, spinning for short waits and sleeping for long ones.
///
/// Spinning mirrors RDMA completion-queue polling and keeps
/// sub-microsecond injected latencies accurate.
pub fn spin_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = crate::clock::now() + d;
    if d > SPIN_THRESHOLD {
        // Sleep for the bulk, spin the remainder.
        std::thread::sleep(d - SPIN_THRESHOLD);
    }
    while crate::clock::now() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn delay_scales_with_bytes() {
        let m = LatencyModel {
            base: Duration::from_nanos(1000),
            per_byte_ns: 2,
        };
        assert_eq!(m.delay(0), Duration::from_nanos(1000));
        assert_eq!(m.delay(500), Duration::from_nanos(2000));
        assert_eq!(m.round_trip(500), Duration::from_nanos(3000));
    }

    #[test]
    fn instant_model_is_zero() {
        assert_eq!(LatencyModel::instant().delay(1 << 20), Duration::ZERO);
    }

    #[test]
    fn presets_are_ordered() {
        // RDMA < TCP < HDD for the base cost — the relation every
        // baseline comparison in the paper rests on.
        assert!(LatencyModel::rdma().base < LatencyModel::tcp_kernel().base);
        assert!(LatencyModel::tcp_kernel().base < LatencyModel::hdd_commit().base);
    }

    #[test]
    fn spin_wait_is_reasonably_accurate() {
        let d = Duration::from_micros(50);
        let start = Instant::now();
        spin_wait(d);
        let elapsed = start.elapsed();
        assert!(elapsed >= d, "waited only {elapsed:?}");
        assert!(elapsed < d * 50, "waited way too long: {elapsed:?}");
    }

    #[test]
    fn spin_wait_zero_returns_immediately() {
        let start = Instant::now();
        spin_wait(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }
}
