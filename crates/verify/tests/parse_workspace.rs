//! Golden test for the ring-lint v2 parser: every `.rs` file in the
//! workspace must parse without structural errors. This is the
//! contract the tree-mode rules depend on — a file the parser cannot
//! walk is a file the semantic passes silently skip.

use std::path::{Path, PathBuf};

use ring_verify::lexer::lex;
use ring_verify::parse::parse;

fn workspace_root() -> PathBuf {
    // crates/verify -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // target/ holds generated build artifacts, not our code.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every source, test, bench, and fixture file in `crates/` parses
/// with zero [`ring_verify::ast::ParseError`]s.
#[test]
fn every_workspace_file_parses() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    assert!(
        files.len() > 50,
        "expected a real workspace, found {} files",
        files.len()
    );
    let mut failures = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read source file");
        let tree = parse(&lex(&src));
        for e in &tree.errors {
            failures.push(format!("{}:{}: {}", path.display(), e.line, e.msg));
        }
    }
    assert!(
        failures.is_empty(),
        "{} parse failures across {} files:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
}

/// The parser extracts real structure, not just an empty tree: counts
/// of functions and match expressions over the workspace are sane.
#[test]
fn workspace_parse_extracts_structure() {
    use ring_verify::ast::{walk_block_exprs, walk_items, Expr, Item, ItemCtx};

    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    let mut fns = 0usize;
    let mut matches = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read source file");
        let tree = parse(&lex(&src));
        walk_items(&tree.items, &ItemCtx::default(), &mut |_ctx, item| {
            if let Item::Fn(f) = item {
                fns += 1;
                if let Some(body) = &f.body {
                    walk_block_exprs(body, &mut |e| {
                        if matches!(e, Expr::Match(_)) {
                            matches += 1;
                        }
                    });
                }
            }
        });
    }
    assert!(
        fns > 500,
        "expected >500 fns across the workspace, got {fns}"
    );
    assert!(
        matches > 100,
        "expected >100 match exprs across the workspace, got {matches}"
    );
}
