---- MODULE ModelDriftFixture ----
\* Hermetic stand-in for RingWriteSemantics.tla: just enough top-level
\* definitions for the model-drift fixtures to validate markers against.

CoordPrepare(c) ==
    /\ TRUE

RedundancyAck(k, i, n) ==
    /\ TRUE

CommitFlag(c) ==
    /\ TRUE

====
