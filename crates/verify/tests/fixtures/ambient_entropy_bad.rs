// Fixture: ambient-entropy positive case.
use rand::thread_rng;

fn roll() -> u32 {
    let mut rng = thread_rng(); // line 5: flagged
    rng.gen_range(0..6)
}

fn seed() -> u64 {
    rand::rngs::OsRng.next_u64() // line 10: flagged (path position)
}
