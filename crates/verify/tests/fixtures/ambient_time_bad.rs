// Fixture: ambient-time positive case. Line numbers are asserted by
// tests/lint_fixtures.rs — keep the offending lines where they are.
use std::time::{Instant, SystemTime};

fn deadline() -> Instant {
    Instant::now() // line 6: flagged
}

fn wall() -> SystemTime {
    SystemTime::now() // line 10: flagged
}
