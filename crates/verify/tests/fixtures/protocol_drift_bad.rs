// Fixture: protocol-drift positive — the enum, the tag table, and the
// matches disagree in every way the pass detects.
pub enum Msg {
    Put { key: u64 },
    Get { key: u64 },
    Ack,
}

pub const MSG_PUT: u8 = 1;
pub const MSG_GET: u8 = 2;
pub const MSG_EVICT: u8 = 2;

pub fn dispatch(m: &Msg) {
    match m {
        Msg::Put { .. } => {}
        Msg::Get { .. } => {}
        _ => {}
    }
}

pub fn decode(tag: u8) {
    match tag {
        MSG_PUT => {}
        _ => {}
    }
}
