// Fixture: `crates/server`-shaped code written the sanctioned way —
// deadlines through the fabric clock, ordered containers for child
// processes, acquire/release (never relaxed) for the shutdown flag.
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

fn await_ready(children: &BTreeMap<u32, u32>, timeout: Duration) -> Instant {
    let deadline = ring_net::clock::now() + timeout;
    for (id, port) in children {
        let _ = (id, port);
    }
    deadline
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
