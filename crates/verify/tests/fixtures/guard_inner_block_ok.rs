// Fixture: guard moved into an inner block and dropped there before
// the send. The token engine cannot see the move and false-positives;
// the tree engine's guard-liveness dataflow is authoritative.
fn relay(state: &std::sync::Mutex<Vec<u8>>, ep: &Endpoint) {
    let guard = state.lock().unwrap();
    let copy = guard.clone();
    {
        let _held = guard; // the guard now lives — and dies — here
    }
    ep.send(1, copy); // clean in tree mode; `--token` flags this line
}
