// Fixture: hashmap-iteration positive case — iterating a HashMap
// field and a HashMap local in a (forced) deterministic path.
use std::collections::HashMap;

struct Table {
    entries: HashMap<u64, Vec<u8>>,
}

impl Table {
    fn retransmit_order(&self) -> Vec<u64> {
        self.entries.keys().copied().collect() // line 11: flagged
    }
}

fn drain_all() {
    let mut pending = HashMap::new();
    pending.insert(1u32, 2u32);
    for (k, v) in &pending { // line 18: flagged
        let _ = (k, v);
    }
}
