// Fixture: relaxed-ordering negative case — this file IS on the
// fixture allowlist (tests/fixtures/allowlist.txt), standing in for a
// documented monotonic counter.
use std::sync::atomic::{AtomicU64, Ordering};

fn tally(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
