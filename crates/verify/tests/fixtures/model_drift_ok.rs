//! model-drift negative fixture: marked steps, attribute between
//! marker and fn, a suppressed helper, and a test-module fn all pass.

/// Assigns the next version.
// tla: CoordPrepare
pub fn next_version(v: u64) -> u64 {
    v + 1
}

// tla: RedundancyAck
#[inline]
pub fn apply_ack(need: usize) -> usize {
    need.saturating_sub(1)
}

// A helper that genuinely has no spec counterpart is suppressed
// explicitly, leaving an audit trail.
// ring-lint: allow(model-drift)
pub fn render_debug(need: usize) -> String {
    format!("{need}")
}

#[cfg(test)]
mod tests {
    pub fn unmarked_test_helper() -> u64 {
        1
    }

    #[test]
    fn versions_advance() {
        assert_eq!(super::next_version(unmarked_test_helper()), 2);
    }
}
