// Fixture: protocol-drift negative — enum, tag table, and matches all
// agree; a single-variant accessor with a wildcard arm is
// if-let-shaped and exempt from the wildcard finding.
pub enum Msg {
    Put { key: u64 },
    Get { key: u64 },
}

pub const MSG_PUT: u8 = 1;
pub const MSG_GET: u8 = 2;

pub fn dispatch(m: &Msg) {
    match m {
        Msg::Put { .. } => {}
        Msg::Get { .. } => {}
    }
}

pub fn key_of(m: &Msg) -> Option<u64> {
    match m {
        Msg::Put { key } => Some(*key),
        _ => None,
    }
}

pub fn decode(tag: u8) {
    match tag {
        MSG_PUT => {}
        MSG_GET => {}
        _ => {}
    }
}
