// Fixture: guard-across-send negative case — copy out under the lock,
// drop the guard, then send.
fn relay(state: &std::sync::Mutex<Vec<u8>>, ep: &Endpoint) {
    let guard = state.lock().unwrap();
    let copy = guard.clone();
    drop(guard);
    ep.send(1, copy);
}

fn relay_scoped(state: &std::sync::Mutex<Vec<u8>>, ep: &Endpoint) {
    let copy = {
        let guard = state.lock().unwrap();
        guard.clone()
    };
    ep.send(1, copy);
}
