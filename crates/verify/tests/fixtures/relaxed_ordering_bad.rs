// Fixture: relaxed-ordering positive case — this file is NOT on the
// fixture allowlist.
use std::sync::atomic::{AtomicBool, Ordering};

fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed); // line 6: flagged
}
