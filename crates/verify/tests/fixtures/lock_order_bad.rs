// Fixture: lock-order positive — two methods take the same pair of
// locks in opposite orders (AB/BA cycle), and a helper re-acquires a
// lock its caller already holds (self-cycle via `self.count()`).
struct Hub {
    conns: std::sync::Mutex<Vec<u8>>,
    peers: std::sync::Mutex<Vec<u8>>,
}

impl Hub {
    fn forward(&self) {
        let c = self.conns.lock().unwrap();
        let p = self.peers.lock().unwrap();
        drop(p);
        drop(c);
    }

    fn reverse(&self) {
        let p = self.peers.lock().unwrap();
        let c = self.conns.lock().unwrap();
        drop(c);
        drop(p);
    }

    fn reenter(&self) {
        let c = self.conns.lock().unwrap();
        self.count();
        drop(c);
    }

    fn count(&self) -> usize {
        self.conns.lock().unwrap().len()
    }
}
