// Fixture: guard-across-send positive case — a lock guard held while
// the endpoint sends.
fn relay(state: &std::sync::Mutex<Vec<u8>>, ep: &Endpoint) {
    let guard = state.lock().unwrap();
    ep.send(1, guard.clone()); // line 5: flagged (guard from line 4 live)
}

fn relay_rw(state: &std::sync::RwLock<Vec<u8>>, ep: &Endpoint) {
    let snapshot = state.read().expect("poisoned");
    ep.multicast(&[1, 2], snapshot.clone()); // line 10: flagged
}
