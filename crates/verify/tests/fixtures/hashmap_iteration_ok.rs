// Fixture: hashmap-iteration negative case — ordered maps iterate
// deterministically, and point lookups on a HashMap are fine.
use std::collections::{BTreeMap, HashMap};

struct Table {
    entries: BTreeMap<u64, Vec<u8>>,
    index: HashMap<u64, usize>,
}

impl Table {
    fn retransmit_order(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }

    fn lookup(&self, k: u64) -> Option<usize> {
        self.index.get(&k).copied()
    }
}
