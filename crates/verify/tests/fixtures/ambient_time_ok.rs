// Fixture: ambient-time negative case — routed through the fabric
// clock, one sanctioned site with an allow directive, and a mention
// inside a test module.
use std::time::Instant;

fn deadline() -> Instant {
    ring_net::clock::now()
}

fn sanctioned() -> Instant {
    Instant::now() // ring-lint: allow(ambient-time) -- fixture's clock seam
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let _ = Instant::now();
    }
}
