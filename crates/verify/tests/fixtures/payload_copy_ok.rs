// Fixture: payload-copy negative — refcount bumps, borrows, and
// copies of non-Payload data are all fine; test code is exempt.
pub struct Frame {
    pub body: Payload,
}

pub fn share(frame: &Frame) -> Payload {
    frame.body.clone()
}

pub fn peek(frame: &Frame) -> usize {
    frame.body.as_slice().len()
}

pub fn copy_other(names: &[u8]) -> Vec<u8> {
    names.to_vec()
}

#[cfg(test)]
mod tests {
    #[test]
    fn copies_are_fine_in_tests() {
        let f = super::Frame {
            body: Payload::default(),
        };
        let _ = f.body.to_vec();
    }
}
