// Fixture: ambient-entropy negative case — seeded from the cluster
// spec, as every deterministic path must be.
use rand::{rngs::SmallRng, SeedableRng};

fn roll(spec_seed: u64) -> u32 {
    let mut rng = SmallRng::seed_from_u64(spec_seed);
    rng.gen_range(0..6)
}

// An identifier merely containing a forbidden name is not a use.
fn thread_rng_audit_note() {}
