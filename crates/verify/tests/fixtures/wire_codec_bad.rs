// Fixture: a `crates/wire`-shaped codec that breaks the deterministic
// contract — decode order depending on a hash table and an encoder
// stamping ambient wall-clock time into the frame. Line numbers are
// asserted by tests/lint_fixtures.rs.
use std::collections::HashMap;
use std::time::SystemTime;

struct Registry {
    decoders: HashMap<u8, fn(&[u8]) -> u64>,
}

impl Registry {
    fn try_all(&self, body: &[u8]) -> Vec<u64> {
        self.decoders.values().map(|d| d(body)).collect() // line 14: flagged
    }
}

fn stamp(out: &mut Vec<u8>) {
    let _ = SystemTime::now(); // line 19: flagged
    out.push(0);
}
