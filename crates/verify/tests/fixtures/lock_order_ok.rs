// Fixture: lock-order negative — every path takes the locks in one
// global order, and a guard that dies (inner block) before the next
// acquisition creates no edge at all.
struct Hub {
    conns: std::sync::Mutex<Vec<u8>>,
    peers: std::sync::Mutex<Vec<u8>>,
}

impl Hub {
    fn forward(&self) {
        let c = self.conns.lock().unwrap();
        let p = self.peers.lock().unwrap();
        drop(p);
        drop(c);
    }

    fn also_forward(&self) {
        let c = self.conns.lock().unwrap();
        let p = self.peers.lock().unwrap();
        drop(p);
        drop(c);
    }

    fn sequential(&self) {
        // peers is released before conns is taken: no peers -> conns
        // edge, so no cycle against `forward`'s conns -> peers.
        {
            let p = self.peers.lock().unwrap();
            drop(p);
        }
        let c = self.conns.lock().unwrap();
        drop(c);
    }
}
