//! model-drift positive fixture: an unmarked step and a marker naming
//! a definition absent from the spec.

/// A transition with no marker at all.
pub fn unmarked_step(v: u64) -> u64 {
    v + 1
}

// tla: NoSuchAction
pub fn mislabeled_step(v: u64) -> u64 {
    v - 1
}

// tla: CommitFlag
pub fn properly_marked(v: u64) -> u64 {
    v
}
