// Fixture: payload-copy positive — deep copies of `Payload`-typed
// values through a field, a parameter, and a local binding.
pub struct Frame {
    pub body: Payload,
}

pub fn relay(frame: &Frame) -> Vec<u8> {
    frame.body.to_vec()
}

pub fn copy_param(p: Payload) -> Vec<u8> {
    Vec::from(p)
}

pub fn copy_let(frame: &Frame) -> Vec<u8> {
    let staged = frame.body.clone();
    staged.to_vec()
}
