//! Loom models of the Ring workspace's three trickiest concurrency
//! protocols. Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ring-verify --test loom --release
//! ```
//!
//! Loom models are *models*: each re-states the protocol shape in
//! miniature over `loom::sync` types so the schedule explorer can drive
//! it, rather than linking the production structs (which sit on
//! `parking_lot` and `Instant` and are not loom-instrumentable). The
//! invariant each model checks is cross-referenced from the production
//! source:
//!
//! 1. **Mailbox** (`crates/net/src/mailbox.rs`): the relaxed `count`
//!    mirror never disagrees with the heap length at quiescence, and a
//!    blocked receiver is always woken by a concurrent push or close
//!    (no lost wakeup).
//! 2. **Payload** (`crates/net/src/payload.rs`): one buffer shared by a
//!    retransmit path and a dedup path is readable from both and freed
//!    exactly once.
//! 3. **Commit flag** (`crates/core/src/node/coord.rs`): publishing a
//!    value with a Release store of a flag and observing with an
//!    Acquire load never lets the observer see the flag without the
//!    value — the reason `relaxed-ordering` has no allowlist entry for
//!    any publish/observe pair.

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::time::Duration;

/// Miniature of `Mailbox`: FIFO queue under a Mutex, a Condvar for
/// waiters, and a lock-free `count` mirror updated while the lock is
/// held — exactly the production structure minus timestamps.
struct MiniMailbox {
    queue: Mutex<Vec<u32>>,
    cond: Condvar,
    closed: AtomicBool,
    count: AtomicUsize,
}

impl MiniMailbox {
    fn new() -> Self {
        MiniMailbox {
            queue: Mutex::new(Vec::new()),
            cond: Condvar::new(),
            closed: AtomicBool::new(false),
            count: AtomicUsize::new(0),
        }
    }

    fn push(&self, v: u32) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        let mut q = self.queue.lock().unwrap();
        q.push(v);
        self.count.store(q.len(), Ordering::Relaxed);
        drop(q);
        self.cond.notify_one();
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let mut q = self.queue.lock().unwrap();
        q.clear();
        self.count.store(0, Ordering::Relaxed);
        drop(q);
        self.cond.notify_all();
    }

    /// Blocking receive; `None` means closed. The wait is bounded so a
    /// lost-wakeup bug fails the test instead of hanging it.
    fn recv(&self) -> Option<u32> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            if !q.is_empty() {
                let v = q.remove(0);
                self.count.store(q.len(), Ordering::Relaxed);
                return Some(v);
            }
            let (guard, timeout) = self.cond.wait_timeout(q, Duration::from_secs(5)).unwrap();
            q = guard;
            assert!(
                !timeout.timed_out() || !q.is_empty() || self.closed.load(Ordering::Acquire),
                "lost wakeup: receiver timed out with no push and no close observed"
            );
        }
    }
}

/// Mailbox model: two producers and one consumer; the consumer drains
/// everything, and at quiescence the `count` mirror equals the real
/// queue length (zero). A push never vanishes and a waiter is never
/// left asleep.
#[test]
fn mailbox_len_mirror_and_no_lost_wakeup() {
    loom::model(|| {
        let mb = Arc::new(MiniMailbox::new());

        let producers: Vec<_> = (0..2u32)
            .map(|p| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    mb.push(p * 10);
                    mb.push(p * 10 + 1);
                })
            })
            .collect();

        let consumer = {
            let mb = Arc::clone(&mb);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..4 {
                    got.push(mb.recv().expect("closed before all messages drained"));
                }
                got
            })
        };

        for p in producers {
            p.join().unwrap();
        }
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 10, 11], "a push was lost");

        // Quiescent: the lock-free mirror must agree with the queue.
        let q = mb.queue.lock().unwrap();
        assert_eq!(q.len(), 0);
        assert_eq!(mb.count.load(Ordering::Relaxed), 0, "count mirror diverged");
    });
}

/// Mailbox model: `close` must wake a blocked receiver (production:
/// `close` stores `closed` with Release, clears, `notify_all`). A
/// receiver blocked forever after close is the exact bug shape that
/// turns `Fabric::kill` into a hung cluster.
#[test]
fn mailbox_close_wakes_blocked_receiver() {
    loom::model(|| {
        let mb = Arc::new(MiniMailbox::new());
        let rx = {
            let mb = Arc::clone(&mb);
            thread::spawn(move || mb.recv())
        };
        let closer = {
            let mb = Arc::clone(&mb);
            thread::spawn(move || mb.close())
        };
        closer.join().unwrap();
        // Must terminate: either it won the race and got nothing, or it
        // can only have returned None — never a hang, never a value.
        assert_eq!(rx.join().unwrap(), None);
    });
}

/// Counts drops of the inner buffer, standing in for `Vec<u8>`'s heap
/// allocation inside `Payload(Arc<Vec<u8>>)`.
struct CountedBuf {
    bytes: Vec<u8>,
    drops: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl Drop for CountedBuf {
    fn drop(&mut self) {
        self.drops.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Payload model: one buffer cloned into a retransmit path and a dedup
/// path concurrently (production: `Payload::clone` on the write
/// fan-out, `PendingPut` retransmit, and the dedup table all hold the
/// same `Arc<Vec<u8>>`). Both observers read identical bytes; the
/// buffer is freed exactly once after the last clone drops.
#[test]
fn payload_shared_across_retransmit_and_dedup() {
    loom::model(|| {
        let drops = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let payload = Arc::new(CountedBuf {
            bytes: vec![0xAB; 64],
            drops: std::sync::Arc::clone(&drops),
        });

        let retransmit = {
            let p = Arc::clone(&payload);
            thread::spawn(move || {
                assert!(p.bytes.iter().all(|&b| b == 0xAB));
                p.bytes.len()
            })
        };
        let dedup = {
            let p = Arc::clone(&payload);
            thread::spawn(move || {
                assert!(p.bytes.iter().all(|&b| b == 0xAB));
                p.bytes.len()
            })
        };
        drop(payload);
        assert_eq!(retransmit.join().unwrap(), 64);
        assert_eq!(dedup.join().unwrap(), 64);
        assert_eq!(
            drops.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "payload buffer dropped {} times",
            drops.load(std::sync::atomic::Ordering::SeqCst)
        );
    });
}

/// Commit-flag model: the coordinator publishes a committed version by
/// writing the value slot and then Release-storing the flag; any
/// observer that Acquire-loads the flag as set must see the value
/// write. This is the publish/observe pair the `relaxed-ordering` lint
/// exists to protect — weaken the Release/Acquire pair to Relaxed and
/// loom (the real one) reports the assertion firing.
#[test]
fn commit_flag_release_acquire_publishes_value() {
    loom::model(|| {
        let slot = Arc::new(AtomicU64::new(0));
        let committed = Arc::new(AtomicBool::new(false));

        let writer = {
            let slot = Arc::clone(&slot);
            let committed = Arc::clone(&committed);
            thread::spawn(move || {
                slot.store(0xC0FFEE, Ordering::Relaxed);
                committed.store(true, Ordering::Release);
            })
        };

        let reader = {
            let slot = Arc::clone(&slot);
            let committed = Arc::clone(&committed);
            thread::spawn(move || {
                if committed.load(Ordering::Acquire) {
                    assert_eq!(
                        slot.load(Ordering::Relaxed),
                        0xC0FFEE,
                        "observed commit flag without the committed value"
                    );
                }
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();
    });
}
