//! Fixture tests for ring-lint: one positive and one negative case per
//! rule, asserting the exact (file, line, rule) of every diagnostic.
//!
//! Each fixture is linted in its own run so the cross-module hash-name
//! collection of one fixture cannot leak into another (fixture paths
//! all map to the same crate key).

use std::collections::BTreeSet;
use std::path::Path;

use ring_verify::{rules, Mode, Workspace};

/// Lints one fixture as deterministic-path code and returns
/// `(line, rule)` pairs, asserting every diagnostic names the fixture.
fn lint_fixture(name: &str, allowlist: Option<&str>) -> Vec<(u32, &'static str)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let rel = format!("tests/fixtures/{name}");
    let allow = match allowlist {
        Some(a) => rules::load_relaxed_allowlist(&root.join("tests/fixtures").join(a))
            .expect("fixture allowlist readable"),
        None => BTreeSet::new(),
    };
    let ws = Workspace::explicit(root, vec![rel.clone()], true, allow);
    let diags = ws.lint().expect("fixture readable");
    for d in &diags {
        assert_eq!(d.file, rel, "diagnostic names the linted file");
    }
    diags.into_iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn ambient_time_positive() {
    assert_eq!(
        lint_fixture("ambient_time_bad.rs", None),
        vec![(6, rules::AMBIENT_TIME), (10, rules::AMBIENT_TIME)]
    );
}

#[test]
fn ambient_time_negative() {
    // Fabric clock, an allow-directive site, and a #[cfg(test)] module
    // all pass.
    assert_eq!(lint_fixture("ambient_time_ok.rs", None), vec![]);
}

#[test]
fn ambient_entropy_positive() {
    // The `use` of thread_rng is itself a violation (line 2), as are
    // the call (line 5) and the OsRng path expression (line 10).
    assert_eq!(
        lint_fixture("ambient_entropy_bad.rs", None),
        vec![
            (2, rules::AMBIENT_ENTROPY),
            (5, rules::AMBIENT_ENTROPY),
            (10, rules::AMBIENT_ENTROPY)
        ]
    );
}

#[test]
fn ambient_entropy_negative() {
    assert_eq!(lint_fixture("ambient_entropy_ok.rs", None), vec![]);
}

#[test]
fn guard_across_send_positive() {
    assert_eq!(
        lint_fixture("guard_across_send_bad.rs", None),
        vec![
            (5, rules::GUARD_ACROSS_SEND),
            (10, rules::GUARD_ACROSS_SEND)
        ]
    );
}

#[test]
fn guard_across_send_negative() {
    // drop() before send and a block-scoped guard both pass.
    assert_eq!(lint_fixture("guard_across_send_ok.rs", None), vec![]);
}

#[test]
fn relaxed_ordering_positive() {
    assert_eq!(
        lint_fixture("relaxed_ordering_bad.rs", None),
        vec![(6, rules::RELAXED_ORDERING)]
    );
}

#[test]
fn relaxed_ordering_negative_via_allowlist() {
    // On the allowlist: clean. Off the allowlist: the same file is a
    // violation — proving the allowlist is what's doing the work.
    assert_eq!(
        lint_fixture("relaxed_ordering_ok.rs", Some("allowlist.txt")),
        vec![]
    );
    assert_eq!(
        lint_fixture("relaxed_ordering_ok.rs", None),
        vec![(7, rules::RELAXED_ORDERING)]
    );
}

#[test]
fn hashmap_iteration_positive() {
    assert_eq!(
        lint_fixture("hashmap_iteration_bad.rs", None),
        vec![
            (11, rules::HASHMAP_ITERATION),
            (18, rules::HASHMAP_ITERATION)
        ]
    );
}

#[test]
fn hashmap_iteration_negative() {
    // BTreeMap iteration and HashMap point lookups both pass.
    assert_eq!(lint_fixture("hashmap_iteration_ok.rs", None), vec![]);
}

/// Lints one fixture as a model-mirror file against the hermetic
/// fixture spec and returns `(line, rule)` pairs.
fn lint_model_fixture(name: &str) -> Vec<(u32, &'static str)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let rel = format!("tests/fixtures/{name}");
    let spec = std::fs::read_to_string(root.join("tests/fixtures/model_drift_spec.tla"))
        .expect("fixture spec readable");
    let ws = Workspace::explicit(root, vec![rel.clone()], false, BTreeSet::new())
        .with_tla_actions(rules::parse_tla_actions(&spec));
    let diags = ws.lint().expect("fixture readable");
    for d in &diags {
        assert_eq!(d.file, rel, "diagnostic names the linted file");
    }
    diags.into_iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn model_drift_positive() {
    // An unmarked step and a marker naming a nonexistent action; the
    // correctly marked step is clean.
    assert_eq!(
        lint_model_fixture("model_drift_bad.rs"),
        vec![(5, rules::MODEL_DRIFT), (10, rules::MODEL_DRIFT)]
    );
}

#[test]
fn model_drift_negative() {
    // Valid markers (including one separated from the fn by an
    // attribute), an allow-directive helper, and a #[cfg(test)] module
    // all pass.
    assert_eq!(lint_model_fixture("model_drift_ok.rs"), vec![]);
}

#[test]
fn tla_action_parser_reads_top_level_definitions() {
    let spec = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/model_drift_spec.tla"),
    )
    .expect("fixture spec readable");
    let actions = rules::parse_tla_actions(&spec);
    for a in ["CoordPrepare", "RedundancyAck", "CommitFlag"] {
        assert!(actions.contains(a), "missing {a}");
    }
    assert_eq!(actions.len(), 3, "{actions:?}");
}

/// The real spec and the real steps module must agree — the workspace
/// run of the linter over the live tree reports no model drift.
#[test]
fn live_steps_module_matches_live_spec() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("repo root");
    let spec = std::fs::read_to_string(repo_root.join(ring_verify::TLA_SPEC))
        .expect("RingWriteSemantics.tla present");
    let actions = rules::parse_tla_actions(&spec);
    // The canonical action set is all there.
    for a in [
        "IssuePut",
        "CoordPrepare",
        "RedundancyAck",
        "CommitFlag",
        "RetryDeliver",
        "GetBind",
        "DegradedBind",
        "SparePromote",
        "CoordCrashRecover",
    ] {
        assert!(actions.contains(a), "spec lost action {a}");
    }
    let ws = Workspace::discover(repo_root).expect("discover");
    let drift: Vec<_> = ws
        .lint()
        .expect("lint")
        .into_iter()
        .filter(|d| d.rule == rules::MODEL_DRIFT)
        .collect();
    assert!(drift.is_empty(), "model drift in live tree: {drift:?}");
}

#[test]
fn wire_crate_idioms_flagged() {
    // Codec-shaped code: hash-ordered decoder dispatch and a wall-clock
    // stamp are both violations on the (now deterministic) wire path.
    assert_eq!(
        lint_fixture("wire_codec_bad.rs", None),
        vec![(14, rules::HASHMAP_ITERATION), (19, rules::AMBIENT_TIME)]
    );
}

#[test]
fn server_crate_idioms_clean() {
    // Harness-shaped code written the sanctioned way (clock::now,
    // BTreeMap, acquire/release shutdown flag) lints clean.
    assert_eq!(lint_fixture("server_harness_ok.rs", None), vec![]);
}

#[test]
fn deterministic_scope_covers_wire_and_server() {
    for p in [
        "crates/net/src/tcp.rs",
        "crates/core/src/node/mod.rs",
        "crates/wire/src/enc.rs",
        "crates/server/src/harness.rs",
        "crates/model/src/explore.rs",
    ] {
        assert!(rules::is_deterministic_path(p), "{p} must be in scope");
    }
    for p in [
        "crates/bench/src/measure.rs",
        "crates/wire/tests/roundtrip.rs",
        "crates/server/tests/loopback.rs",
        "shims/proptest/src/lib.rs",
    ] {
        assert!(!rules::is_deterministic_path(p), "{p} must be exempt");
    }
}

/// The workspace walk (crate-dir glob) picks up the new crates — a
/// regression guard against hard-coded crate lists creeping back in.
#[test]
fn discover_walks_wire_and_server() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("repo root");
    let ws = Workspace::discover(repo_root).expect("discover");
    for expect in [
        "crates/wire/src/lib.rs",
        "crates/wire/src/enc.rs",
        "crates/server/src/harness.rs",
        "crates/server/src/bin/ring_server.rs",
    ] {
        assert!(
            ws.files().iter().any(|f| f == expect),
            "walk missed {expect}"
        );
    }
    // Test trees and shims stay out of the lint surface.
    assert!(ws
        .files()
        .iter()
        .all(|f| !f.contains("/tests/") && !f.starts_with("shims/")));
}

/// End-to-end through the binary: JSON output carries the same
/// file/line/rule triples and the exit code signals findings.
#[test]
fn binary_reports_json_and_exit_code() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ring-lint"))
        .current_dir(root)
        .args([
            "--det",
            "--json",
            "--root",
            ".",
            "tests/fixtures/ambient_time_bad.rs",
        ])
        .output()
        .expect("ring-lint runs");
    assert_eq!(out.status.code(), Some(1), "findings exit with code 1");
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        json.contains(
            "{\"file\": \"tests/fixtures/ambient_time_bad.rs\", \"line\": 6, \
             \"rule\": \"ambient-time\""
        ),
        "JSON names the first finding: {json}"
    );
    assert!(json.contains("\"line\": 10"), "JSON has the second finding");

    // Clean fixture: exit 0, empty array.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ring-lint"))
        .current_dir(root)
        .args([
            "--det",
            "--json",
            "--root",
            ".",
            "tests/fixtures/ambient_time_ok.rs",
        ])
        .output()
        .expect("ring-lint runs");
    assert_eq!(out.status.code(), Some(0), "clean run exits 0");
    assert_eq!(String::from_utf8(out.stdout).expect("utf8"), "[]\n");
}

// ---------------------------------------------------------------------
// Tree-engine workspace passes: lock-order, protocol-drift,
// payload-copy. Each positive fixture seeds the bug; assertions pin
// the exact anchor lines.
// ---------------------------------------------------------------------

#[test]
fn lock_order_positive() {
    // Line 19: `reverse` takes conns while holding peers — the edge
    // that closes the AB/BA cycle against `forward`. Line 26: the
    // `self.count()` call re-acquiring conns under conns.
    assert_eq!(
        lint_fixture("lock_order_bad.rs", None),
        vec![(19, rules::LOCK_ORDER), (26, rules::LOCK_ORDER)]
    );
}

#[test]
fn lock_order_negative() {
    // Consistent order everywhere; a guard that dies in an inner block
    // before the next acquisition creates no edge.
    assert_eq!(lint_fixture("lock_order_ok.rs", None), vec![]);
}

#[test]
fn protocol_drift_positive() {
    // 6: Msg::Ack has no MSG_ACK. 10/11: MSG_GET and MSG_EVICT share
    // value 2, and MSG_EVICT names no variant. 14: dispatch hides Ack
    // behind `_`. 22: decode handles 1/3 known tags.
    assert_eq!(
        lint_fixture("protocol_drift_bad.rs", None),
        vec![
            (6, rules::PROTOCOL_DRIFT),
            (10, rules::PROTOCOL_DRIFT),
            (11, rules::PROTOCOL_DRIFT),
            (14, rules::PROTOCOL_DRIFT),
            (22, rules::PROTOCOL_DRIFT)
        ]
    );
}

#[test]
fn protocol_drift_negative() {
    // Enum/tags/matches agree; the single-variant accessor with a
    // wildcard arm (if-let-shaped) is exempt.
    assert_eq!(lint_fixture("protocol_drift_ok.rs", None), vec![]);
}

#[test]
fn payload_copy_positive() {
    // A field copy, a `Vec::from` on a param, and a copy through a
    // payload-initialized let.
    assert_eq!(
        lint_fixture("payload_copy_bad.rs", None),
        vec![
            (8, rules::PAYLOAD_COPY),
            (12, rules::PAYLOAD_COPY),
            (17, rules::PAYLOAD_COPY)
        ]
    );
}

#[test]
fn payload_copy_negative() {
    // `.clone()` (refcount bump), `as_slice()`, non-Payload `.to_vec`,
    // and test-module copies all pass.
    assert_eq!(lint_fixture("payload_copy_ok.rs", None), vec![]);
}

// ---------------------------------------------------------------------
// Engine parity: the six legacy rules must agree diagnostic-for-
// diagnostic between the token and tree engines — with one documented
// exception where the tree engine's dataflow is strictly better.
// ---------------------------------------------------------------------

/// Like `lint_fixture`, but in a chosen engine mode.
fn lint_fixture_in(mode: Mode, name: &str, allowlist: Option<&str>) -> Vec<(u32, &'static str)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let rel = format!("tests/fixtures/{name}");
    let allow = match allowlist {
        Some(a) => rules::load_relaxed_allowlist(&root.join("tests/fixtures").join(a))
            .expect("fixture allowlist readable"),
        None => BTreeSet::new(),
    };
    let ws = Workspace::explicit(root, vec![rel.clone()], true, allow).with_mode(mode);
    let diags = ws.lint().expect("fixture readable");
    diags.into_iter().map(|d| (d.line, d.rule)).collect()
}

/// The per-file fixtures produce byte-identical results in both
/// engines (the tree-only workspace passes fire on none of them).
#[test]
fn token_and_tree_engines_agree_on_fixtures() {
    for (name, allowlist) in [
        ("ambient_time_bad.rs", None),
        ("ambient_time_ok.rs", None),
        ("ambient_entropy_bad.rs", None),
        ("ambient_entropy_ok.rs", None),
        ("guard_across_send_bad.rs", None),
        ("guard_across_send_ok.rs", None),
        ("relaxed_ordering_bad.rs", None),
        ("relaxed_ordering_ok.rs", Some("allowlist.txt")),
        ("hashmap_iteration_bad.rs", None),
        ("hashmap_iteration_ok.rs", None),
        ("wire_codec_bad.rs", None),
        ("server_harness_ok.rs", None),
    ] {
        assert_eq!(
            lint_fixture_in(Mode::Tree, name, allowlist),
            lint_fixture_in(Mode::Token, name, allowlist),
            "engines disagree on {name}"
        );
    }
}

/// The one sanctioned divergence: a guard *moved* into an inner block
/// dies there, which the brace-depth token heuristic cannot see. The
/// tree engine's liveness dataflow is authoritative; the token engine
/// false-positives. This test documents (and pins) both behaviors.
#[test]
fn guard_inner_block_tree_clean_token_false_positive() {
    assert_eq!(
        lint_fixture_in(Mode::Tree, "guard_inner_block_ok.rs", None),
        vec![]
    );
    assert_eq!(
        lint_fixture_in(Mode::Token, "guard_inner_block_ok.rs", None),
        vec![(10, rules::GUARD_ACROSS_SEND)]
    );
}

/// Full-workspace parity on the live tree: both engines, filtered to
/// the six legacy rules, must produce identical diagnostics. CI runs
/// this as its token-vs-tree parity gate.
#[test]
fn token_and_tree_engines_agree_on_live_workspace() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("repo root");
    let legacy: BTreeSet<&str> = [
        rules::AMBIENT_TIME,
        rules::AMBIENT_ENTROPY,
        rules::GUARD_ACROSS_SEND,
        rules::RELAXED_ORDERING,
        rules::HASHMAP_ITERATION,
        rules::MODEL_DRIFT,
    ]
    .into_iter()
    .collect();
    let run = |mode: Mode| -> Vec<(String, u32, &'static str)> {
        Workspace::discover(repo_root)
            .expect("discover")
            .with_mode(mode)
            .lint()
            .expect("lint")
            .into_iter()
            .filter(|d| legacy.contains(d.rule))
            .map(|d| (d.file, d.line, d.rule))
            .collect()
    };
    assert_eq!(run(Mode::Tree), run(Mode::Token));
}

// ---------------------------------------------------------------------
// Binary exit codes: 1 = findings, 2 = internal (parse) error.
// ---------------------------------------------------------------------

/// A structurally damaged file is exit 2 with a parse report — not a
/// silent "clean" and not a finding.
#[test]
fn binary_parse_error_exits_2() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ring-lint"))
        .current_dir(root)
        .args([
            "--det",
            "--root",
            ".",
            "tests/fixtures/parse_error.rs.broken",
        ])
        .output()
        .expect("ring-lint runs");
    assert_eq!(out.status.code(), Some(2), "parse failure exits 2");
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        err.contains("failed to parse") && err.contains("parse_error.rs.broken"),
        "stderr names the unparseable file: {err}"
    );
    // The token engine never parses, so the same file lints (exit 0):
    // `--token` is the escape hatch if the parser itself regresses.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ring-lint"))
        .current_dir(root)
        .args([
            "--token",
            "--det",
            "--root",
            ".",
            "tests/fixtures/parse_error.rs.broken",
        ])
        .output()
        .expect("ring-lint runs");
    assert_eq!(out.status.code(), Some(0), "token engine skips parsing");
}
