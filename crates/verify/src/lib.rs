//! Static analysis for the Ring workspace.
//!
//! `ring-verify` packages the repo's verification tooling:
//!
//! - **`ring-lint`** (this library + the `ring-lint` binary): a
//!   token-level linter enforcing protocol invariants that `rustc` and
//!   clippy cannot see — deterministic paths must not read ambient time
//!   or entropy, lock guards must not be held across fabric sends,
//!   `Ordering::Relaxed` must be justified in an allowlist, and hash
//!   tables must not be iterated where ordering feeds protocol
//!   decisions. See [`rules`] for each rule's rationale.
//! - **loom models** (`tests/loom.rs`, compiled under
//!   `RUSTFLAGS="--cfg loom"`): schedule-exploration models of the
//!   Mailbox length mirror, Payload sharing, and the coordinator's
//!   commit-flag publish/observe pair.
//! - **Sanitizer wiring**: Miri and TSan CI jobs (see
//!   `.github/workflows/sanitizers.yml`) with suppressions under
//!   `crates/verify/suppressions/`.
//!
//! Findings are suppressed per-line with `// ring-lint: allow(<rule>)`
//! on the offending line or the line above, or file-wide with
//! `// ring-lint: allow-file(<rule>)`.

pub mod ast;
pub mod index;
pub mod lexer;
pub mod parse;
pub mod passes;
pub mod rules;
pub mod tree_rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use rules::Diagnostic;

/// Which rule engine a run uses.
///
/// The tree engine is the default: it hosts every legacy rule (see
/// [`tree_rules`]) plus the semantic passes that need real structure
/// (lock-order, protocol-drift, payload-copy). The token engine is the
/// legacy fallback, kept for parity testing — CI diffs the two over
/// the live workspace on the shared rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Parse-tree rules (default).
    #[default]
    Tree,
    /// Legacy token-scan rules (`ring-lint --token`).
    Token,
}

/// Why a lint run failed before producing a verdict. Maps to exit
/// code 2 in the binary: these are tool failures, not findings.
#[derive(Debug)]
pub enum LintError {
    /// A source file or config file could not be read.
    Io(std::io::Error),
    /// Files the parser could not structurally parse, as
    /// `file:line: message` strings. The workspace golden test keeps
    /// the live tree parseable, so hitting this means either a broken
    /// input file or a parser bug.
    Parse(Vec<String>),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(e) => write!(f, "{e}"),
            LintError::Parse(fails) => {
                write!(f, "{} file(s) failed to parse:", fails.len())?;
                for fail in fails {
                    write!(f, "\n  {fail}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LintError {}

impl From<std::io::Error> for LintError {
    fn from(e: std::io::Error) -> Self {
        LintError::Io(e)
    }
}

/// The result of a lint run: findings plus non-fatal hygiene warnings
/// (stale suppressions). Warnings never affect the exit code — they
/// are the linter linting its own suppression surface.
#[derive(Debug)]
pub struct LintOutcome {
    /// Sorted findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Stale-suppression warnings, human-readable, sorted.
    pub warnings: Vec<String>,
}

/// Default workspace-relative location of the relaxed-ordering
/// allowlist.
pub const RELAXED_ALLOWLIST: &str = "crates/verify/relaxed_allowlist.txt";

/// Default workspace-relative location of the TLA+ write-semantics
/// spec, the source of truth for `// tla:` markers (model-drift rule).
pub const TLA_SPEC: &str = "crates/model/specs/RingWriteSemantics.tla";

/// A linting run over a set of files.
pub struct Workspace {
    root: PathBuf,
    /// Workspace-relative paths of files to lint.
    files: Vec<String>,
    relaxed_allowlist: BTreeSet<String>,
    /// Top-level definitions of the TLA+ spec; empty disables the
    /// model-drift rule.
    tla_actions: BTreeSet<String>,
    /// Override: treat all files as deterministic-path (fixture mode).
    force_deterministic: Option<bool>,
    /// Which rule engine to run.
    mode: Mode,
}

impl Workspace {
    /// Discovers the standard lint surface under `root`: every `.rs`
    /// file in `crates/*/src` and the repo-level `src/` if present.
    /// Shims (`shims/*`) are vendored stand-ins and are exempt; test
    /// trees (`tests/`, `benches/`) are exempt — the invariants guard
    /// production protocol paths.
    pub fn discover(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                collect_rs(&dir.join("src"), root, &mut files)?;
            }
        }
        collect_rs(&root.join("src"), root, &mut files)?;
        files.sort();
        let allowlist_path = root.join(RELAXED_ALLOWLIST);
        let relaxed_allowlist = if allowlist_path.is_file() {
            rules::load_relaxed_allowlist(&allowlist_path)?
        } else {
            BTreeSet::new()
        };
        let spec_path = root.join(TLA_SPEC);
        let tla_actions = if spec_path.is_file() {
            rules::parse_tla_actions(&std::fs::read_to_string(&spec_path)?)
        } else {
            BTreeSet::new()
        };
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            relaxed_allowlist,
            tla_actions,
            force_deterministic: None,
            mode: Mode::default(),
        })
    }

    /// A run over explicitly listed files (fixture/test mode). Paths
    /// are kept as given; `deterministic` overrides path-based scoping.
    pub fn explicit(
        root: &Path,
        files: Vec<String>,
        deterministic: bool,
        allowlist: BTreeSet<String>,
    ) -> Self {
        Workspace {
            root: root.to_path_buf(),
            files,
            relaxed_allowlist: allowlist,
            tla_actions: BTreeSet::new(),
            force_deterministic: Some(deterministic),
            mode: Mode::default(),
        }
    }

    /// Selects the rule engine (defaults to [`Mode::Tree`]).
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Supplies TLA+ definition names for the model-drift rule
    /// (fixture/test mode; [`Workspace::discover`] reads them from
    /// [`TLA_SPEC`] automatically). In explicit mode every listed file
    /// is treated as a model-mirror file once actions are supplied.
    pub fn with_tla_actions(mut self, actions: BTreeSet<String>) -> Self {
        self.tla_actions = actions;
        self
    }

    /// The files this run will lint (workspace-relative).
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// Runs every rule over every file. Diagnostics come back sorted by
    /// (file, line, rule).
    pub fn lint(&self) -> Result<Vec<Diagnostic>, LintError> {
        Ok(self.run()?.diagnostics)
    }

    /// Runs every rule over every file, also returning stale-suppression
    /// warnings. Diagnostics come back sorted by (file, line, rule).
    pub fn run(&self) -> Result<LintOutcome, LintError> {
        // Pass 1: lex everything once, collecting hash-typed names per
        // crate so `self.field` iteration is caught across modules.
        // (Both engines share the token-derived name set — it is part
        // of the rule's contract, not an engine detail.)
        let mut lexed_files = Vec::with_capacity(self.files.len());
        for rel in &self.files {
            let src = std::fs::read_to_string(self.root.join(rel))?;
            let lexed = lexer::lex(&src);
            lexed_files.push((rel.clone(), src, lexed));
        }
        let mut crate_hash_names: std::collections::BTreeMap<String, BTreeSet<String>> =
            std::collections::BTreeMap::new();
        for (rel, _, lexed) in &lexed_files {
            crate_hash_names
                .entry(crate_of(rel))
                .or_default()
                .extend(rules::collect_hash_names(lexed));
        }

        // Pass 1b (tree engine): parse every file. Structural parse
        // errors abort the run — a file the tree rules cannot see is a
        // false "clean", never a finding.
        let trees: Vec<Option<ast::SourceFile>> = match self.mode {
            Mode::Token => lexed_files.iter().map(|_| None).collect(),
            Mode::Tree => {
                let mut parse_failures = Vec::new();
                let trees = lexed_files
                    .iter()
                    .map(|(rel, _, lexed)| {
                        let tree = parse::parse(lexed);
                        for e in &tree.errors {
                            parse_failures.push(format!("{rel}:{}: {}", e.line, e.msg));
                        }
                        Some(tree)
                    })
                    .collect();
                if !parse_failures.is_empty() {
                    return Err(LintError::Parse(parse_failures));
                }
                trees
            }
        };
        let index = match self.mode {
            Mode::Token => None,
            Mode::Tree => {
                let triples: Vec<(String, String, &ast::SourceFile)> = lexed_files
                    .iter()
                    .zip(&trees)
                    .map(|((rel, _, _), tree)| {
                        (
                            crate_of(rel),
                            rel.clone(),
                            tree.as_ref().expect("tree mode"),
                        )
                    })
                    .collect();
                Some(index::WorkspaceIndex::build(&triples))
            }
        };

        // Pass 2: run the rules, recording suppressed hits per file
        // for the stale-suppression check.
        let mut out = Vec::new();
        let mut warnings = Vec::new();
        let mut sups: Vec<Vec<rules::SuppressedHit>> = vec![Vec::new(); lexed_files.len()];
        let empty = BTreeSet::new();
        for (idx, (rel, src, lexed)) in lexed_files.iter().enumerate() {
            let deterministic = self
                .force_deterministic
                .unwrap_or_else(|| rules::is_deterministic_path(rel));
            // Explicit (fixture) runs opt in by supplying actions;
            // workspace runs are path-scoped.
            let model_mirror = match self.force_deterministic {
                Some(_) => !self.tla_actions.is_empty(),
                None => rules::is_model_mirror_path(rel),
            };
            let ctx = rules::FileContext {
                rel_path: rel,
                raw: src,
                lexed,
                deterministic,
                model_mirror,
                relaxed_allowlisted: self.relaxed_allowlist.contains(rel),
                hash_names: crate_hash_names.get(&crate_of(rel)).unwrap_or(&empty),
                tla_actions: &self.tla_actions,
            };
            let sup = &mut sups[idx];
            match self.mode {
                Mode::Token => out.extend(rules::lint_file_recording(&ctx, sup)),
                Mode::Tree => {
                    let tree = trees[idx].as_ref().expect("tree mode");
                    out.extend(tree_rules::lint_file_tree(&ctx, tree, sup));
                }
            }
        }

        // Pass 3 (tree engine): the workspace-level semantic passes —
        // they reason across files, so they run over the whole set.
        if let Some(ix) = &index {
            let pass_files: Vec<passes::PassFile<'_>> = lexed_files
                .iter()
                .zip(&trees)
                .map(|((rel, _, lexed), tree)| passes::PassFile {
                    rel,
                    lexed,
                    tree: tree.as_ref().expect("tree mode"),
                })
                .collect();
            out.extend(passes::run_passes(
                &pass_files,
                ix,
                self.force_deterministic.is_some(),
                &mut sups,
            ));
        }

        let mut files_with_relaxed_sup: BTreeSet<String> = BTreeSet::new();
        for ((rel, _, lexed), sup) in lexed_files.iter().zip(&sups) {
            if sup.iter().any(|&(_, r)| r == rules::RELAXED_ORDERING) {
                files_with_relaxed_sup.insert(rel.clone());
            }
            stale_directive_warnings(rel, lexed, sup, self.mode, &mut warnings);
        }
        for entry in &self.relaxed_allowlist {
            if !self.files.contains(entry) {
                warnings.push(format!(
                    "{RELAXED_ALLOWLIST}: stale entry `{entry}` — file is not in the lint set"
                ));
            } else if !files_with_relaxed_sup.contains(entry) {
                warnings.push(format!(
                    "{RELAXED_ALLOWLIST}: stale entry `{entry}` — no `Ordering::Relaxed` \
                     sites remain in the file"
                ));
            }
        }
        out.sort();
        warnings.sort();
        Ok(LintOutcome {
            diagnostics: out,
            warnings,
        })
    }
}

/// Appends a warning for every `// ring-lint: allow(...)` /
/// `allow-file(...)` directive in `lexed` that suppressed nothing this
/// run. A per-line directive is live when a suppressed hit of its rule
/// landed on its own line or the line below (its coverage span); a
/// file-wide directive is live when any hit of its rule was suppressed
/// anywhere in the file.
///
/// Directives for rules the active engine does not run are skipped:
/// the token engine never runs the workspace passes, so a
/// `payload-copy` allow is not stale under `--token` — just out of
/// that engine's jurisdiction. Unknown rule names are skipped too
/// (lexer fixtures and doc examples use placeholder names).
fn stale_directive_warnings(
    rel: &str,
    lexed: &lexer::Lexed,
    sup: &[rules::SuppressedHit],
    mode: Mode,
    warnings: &mut Vec<String>,
) {
    for (line, rule, file_wide) in &lexed.directives {
        let known = rules::ALL_RULES.contains(&rule.as_str());
        let tree_only = matches!(
            rule.as_str(),
            rules::LOCK_ORDER | rules::PROTOCOL_DRIFT | rules::PAYLOAD_COPY
        );
        if !known || (mode == Mode::Token && tree_only) {
            continue;
        }
        let live = if *file_wide {
            sup.iter().any(|(_, r)| r == rule)
        } else {
            sup.iter()
                .any(|(l, r)| r == rule && (*l == *line || *l == *line + 1))
        };
        if !live {
            let form = if *file_wide { "allow-file" } else { "allow" };
            warnings.push(format!(
                "{rel}:{line}: stale `ring-lint: {form}({rule})` — it suppresses nothing"
            ));
        }
    }
}

/// Crate key for grouping files (`crates/net/src/x.rs` → `crates/net`).
pub(crate) fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        _ => String::new(),
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("path under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Renders diagnostics as a JSON array (machine-readable output for
/// `ring-lint --json`). Hand-rolled: the only values needing escapes
/// are our own messages (quotes and backslashes).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_extracts_crate_dir() {
        assert_eq!(crate_of("crates/net/src/lib.rs"), "crates/net");
        assert_eq!(crate_of("crates/core/src/node/mod.rs"), "crates/core");
        assert_eq!(crate_of("src/main.rs"), "");
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: rules::AMBIENT_TIME,
            message: "say \"no\"\nplease".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\\\"no\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
    }

    #[test]
    fn empty_diags_is_empty_array() {
        assert_eq!(to_json(&[]), "[]\n");
    }
}
