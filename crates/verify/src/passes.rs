//! The tree-only semantic passes: lock-order, protocol-drift, and
//! payload-copy.
//!
//! Unlike the per-file rules, these reason *across* files — the lock
//! graph spans crates, the `Msg` enum and its wire tags live in
//! different crates than the `match`es that consume them — so the
//! whole file set is analyzed in one call, over the parse trees and
//! the [`WorkspaceIndex`].
//!
//! Suppression works like every other rule: `// ring-lint:
//! allow(<rule>)` on (or above) the diagnostic's anchor line, and
//! suppressed findings are recorded so the stale-suppression checker
//! can see live directives.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{walk_items, Block, Expr, Item, ItemCtx, LetStmt, SourceFile, Stmt};
use crate::index::WorkspaceIndex;
use crate::lexer::Lexed;
use crate::rules::{in_spans, Diagnostic, SuppressedHit, LOCK_ORDER, PAYLOAD_COPY, PROTOCOL_DRIFT};
use crate::tree_rules::{guard_init, tree_test_spans};

/// One file's inputs to the workspace passes.
pub struct PassFile<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Lexed source (for suppression directives).
    pub lexed: &'a Lexed,
    /// Parse tree.
    pub tree: &'a SourceFile,
}

/// Files whose lock acquisitions feed the lock-order graph: the crates
/// where locks and the fabric interact. Everything else (bench,
/// workload, model) is single-threaded driver code.
fn in_lock_order_scope(rel: &str) -> bool {
    ["crates/net/src/", "crates/core/src/", "crates/chaos/src/"]
        .iter()
        .any(|p| rel.starts_with(p))
}

/// Hot-path modules for the payload-copy pass: everywhere a `Payload`
/// travels between the engine and the wire. A `.to_vec()` here turns
/// the zero-copy design into a per-hop memcpy.
fn in_hot_path_scope(rel: &str) -> bool {
    [
        "crates/net/src/",
        "crates/wire/src/",
        "crates/core/src/",
        "crates/server/src/",
    ]
    .iter()
    .any(|p| rel.starts_with(p))
}

/// Runs the three passes over the whole file set. `explicit` is true
/// for fixture runs (`ring-lint FILE...`), which widens the path
/// scoping to every listed file. `sups` is parallel to `files`;
/// suppressed findings are recorded into the owning file's slot.
pub fn run_passes(
    files: &[PassFile<'_>],
    ix: &WorkspaceIndex,
    explicit: bool,
    sups: &mut [Vec<SuppressedHit>],
) -> Vec<Diagnostic> {
    let spans: Vec<Vec<(u32, u32)>> = files.iter().map(|f| tree_test_spans(f.tree)).collect();
    let mut em = Emitter {
        files,
        spans: &spans,
        sups,
        out: Vec::new(),
    };
    payload_copy(files, ix, explicit, &mut em);
    protocol_drift(files, ix, &mut em);
    lock_order(files, ix, explicit, &mut em);
    em.out.sort();
    em.out
}

/// Shared diagnostic sink: applies test-mod spans and `allow`
/// directives, records suppressed hits.
struct Emitter<'a, 'b> {
    files: &'a [PassFile<'a>],
    spans: &'a [Vec<(u32, u32)>],
    sups: &'b mut [Vec<SuppressedHit>],
    out: Vec<Diagnostic>,
}

impl Emitter<'_, '_> {
    fn emit(&mut self, file_idx: usize, line: u32, rule: &'static str, message: String) {
        if in_spans(&self.spans[file_idx], line) {
            return;
        }
        let f = &self.files[file_idx];
        if f.lexed.allowed(rule, line) {
            self.sups[file_idx].push((line, rule));
            return;
        }
        self.out.push(Diagnostic {
            file: f.rel.to_string(),
            line,
            rule,
            message,
        });
    }
}

// ---------------------------------------------------------------------
// payload-copy
// ---------------------------------------------------------------------

/// Flags `.to_vec()` and `Vec::from(..)` applied to `Payload`-typed
/// expressions in hot-path modules. `Payload` is an `Arc<Vec<u8>>`
/// behind a newtype: `.clone()` is a refcount bump (blessed), while
/// `.to_vec()` re-materializes the buffer — one silent call undoes the
/// zero-copy design for every message that crosses it.
fn payload_copy(
    files: &[PassFile<'_>],
    ix: &WorkspaceIndex,
    explicit: bool,
    em: &mut Emitter<'_, '_>,
) {
    for (file_idx, f) in files.iter().enumerate() {
        if !explicit && !in_hot_path_scope(f.rel) {
            continue;
        }
        let crate_fields = ix.payload_fields_of(&crate::crate_of(f.rel));
        walk_items(&f.tree.items, &ItemCtx::default(), &mut |ctx, item| {
            if ctx.in_test_mod {
                return;
            }
            let Item::Fn(fun) = item else {
                return;
            };
            let Some(body) = &fun.body else {
                return;
            };
            // Payload-typed names visible in this fn: crate-wide
            // Payload fields, Payload params, and Payload lets
            // (annotated, or initialized from a payload expression).
            let mut names: BTreeSet<String> = crate_fields.cloned().unwrap_or_default();
            for p in &fun.params {
                if let (Some(n), true) = (&p.name, p.ty.mentions("Payload")) {
                    names.insert(n.clone());
                }
            }
            collect_payload_lets(body, &mut names);
            crate::ast::walk_block_exprs(body, &mut |e| match e {
                Expr::MethodCall {
                    recv,
                    method,
                    args,
                    line,
                } if method == "to_vec" && args.is_empty() => {
                    if let Some(name) = payload_root(recv, &names) {
                        em.emit(
                            file_idx,
                            *line,
                            PAYLOAD_COPY,
                            format!(
                                "`{name}.to_vec()` deep-copies a zero-copy `Payload` on a \
                                 hot path; clone the handle (refcount bump) or borrow \
                                 `as_slice()` instead"
                            ),
                        );
                    }
                }
                Expr::Call { callee, args, line } if args.len() == 1 => {
                    let is_vec_from = matches!(
                        callee.as_ref(),
                        Expr::Path(p) if p.segs.len() >= 2
                            && p.segs[p.segs.len() - 2].0 == "Vec"
                            && p.segs[p.segs.len() - 1].0 == "from"
                    );
                    if is_vec_from {
                        if let Some(name) = payload_root(&args[0], &names) {
                            em.emit(
                                file_idx,
                                *line,
                                PAYLOAD_COPY,
                                format!(
                                    "`Vec::from({name})` deep-copies a zero-copy `Payload` \
                                     on a hot path; clone the handle (refcount bump) or \
                                     borrow `as_slice()` instead"
                                ),
                            );
                        }
                    }
                }
                _ => {}
            });
        });
    }
}

/// Collects `let` bindings that hold a `Payload`: annotated with a
/// `Payload` type, or initialized from a payload-rooted expression
/// (flow-insensitive, whole-fn scope).
fn collect_payload_lets(b: &Block, names: &mut BTreeSet<String>) {
    fn visit_block(b: &Block, names: &mut BTreeSet<String>) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let(l) => visit_let(l, names),
                Stmt::Expr(e) => visit_expr(e, names),
                Stmt::Item(_) => {}
            }
        }
    }
    fn visit_let(l: &LetStmt, names: &mut BTreeSet<String>) {
        if let Some(n) = &l.name {
            let annotated = l.ty.as_ref().is_some_and(|t| t.mentions("Payload"));
            let from_payload = l
                .init
                .as_ref()
                .is_some_and(|e| payload_root(e, names).is_some());
            if annotated || from_payload {
                names.insert(n.clone());
            }
        }
        if let Some(init) = &l.init {
            visit_expr(init, names);
        }
        if let Some(eb) = &l.else_block {
            visit_block(eb, names);
        }
    }
    fn visit_expr(e: &Expr, names: &mut BTreeSet<String>) {
        match e {
            Expr::Block(inner) => visit_block(inner, names),
            Expr::If {
                cond, then, else_, ..
            } => {
                visit_expr(cond, names);
                visit_block(then, names);
                if let Some(e2) = else_ {
                    visit_expr(e2, names);
                }
            }
            Expr::While { cond, body, .. } => {
                visit_expr(cond, names);
                visit_block(body, names);
            }
            Expr::For { iter, body, .. } => {
                visit_expr(iter, names);
                visit_block(body, names);
            }
            Expr::Loop { body, .. } => visit_block(body, names),
            Expr::Match(m) => {
                visit_expr(&m.scrutinee, names);
                for arm in &m.arms {
                    visit_expr(&arm.body, names);
                }
            }
            Expr::Closure { body, .. } => visit_expr(body, names),
            Expr::Call { callee, args, .. } => {
                visit_expr(callee, names);
                for a in args {
                    visit_expr(a, names);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                visit_expr(recv, names);
                for a in args {
                    visit_expr(a, names);
                }
            }
            Expr::Field { recv, .. } => visit_expr(recv, names),
            Expr::Index { recv, index, .. } => {
                visit_expr(recv, names);
                visit_expr(index, names);
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    visit_expr(v, names);
                }
            }
            Expr::MacroCall { args, .. } => {
                for a in args {
                    visit_expr(a, names);
                }
            }
            Expr::Ref { inner, .. } => visit_expr(inner, names),
            Expr::Seq { parts, .. } => {
                for p in parts {
                    visit_expr(p, names);
                }
            }
            Expr::Path(_) | Expr::Lit { .. } | Expr::Unknown { .. } => {}
        }
    }
    visit_block(b, names);
}

/// If `e` is rooted in a `Payload`-typed name, returns that name:
/// a bare path, a field access chain ending in a payload field, a
/// `.clone()` of either, or a reference to one.
fn payload_root<'e>(e: &'e Expr, names: &BTreeSet<String>) -> Option<&'e str> {
    match e {
        Expr::Path(p) if p.segs.len() == 1 => {
            let n = p.segs[0].0.as_str();
            names.contains(n).then_some(n)
        }
        Expr::Field { name, .. } => names.contains(name).then_some(name.as_str()),
        Expr::MethodCall {
            recv, method, args, ..
        } if method == "clone" && args.is_empty() => payload_root(recv, names),
        Expr::Ref { inner, .. } => payload_root(inner, names),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// protocol-drift
// ---------------------------------------------------------------------

/// Cross-checks the three places the wire protocol is spelled out:
/// the `Msg` enum, the `MSG_*` tag consts, and every `match` that
/// dispatches on either. Findings:
///
/// - a `Msg` variant with no `MSG_<SCREAMING_SNAKE>` tag const,
/// - a `MSG_*` const naming no variant,
/// - two tag consts sharing a value,
/// - a `match` over `Msg` with a wildcard arm silently absorbing
///   variants (a new message type must fail loudly, not vanish),
/// - a decode `match` over `MSG_*` consts missing known tags (a
///   wildcard error arm is expected, but it only gets *unknown* tags).
fn protocol_drift(files: &[PassFile<'_>], ix: &WorkspaceIndex, em: &mut Emitter<'_, '_>) {
    let Some(msg) = ix.enums.get("Msg") else {
        return;
    };
    let tags: BTreeMap<&str, &crate::index::IntConst> = ix
        .int_consts
        .iter()
        .filter(|(name, _)| name.starts_with("MSG_"))
        .map(|(name, c)| (name.as_str(), c))
        .collect();
    if tags.is_empty() {
        return;
    }
    let file_of = |path: &str| files.iter().position(|f| f.rel == path);

    // Variant <-> tag-const correspondence.
    let expected: BTreeMap<String, &str> = msg
        .variants
        .iter()
        .map(|(v, _)| (format!("MSG_{}", screaming_snake(v)), v.as_str()))
        .collect();
    if let Some(fi) = file_of(&msg.file) {
        for (v, line) in &msg.variants {
            let tag = format!("MSG_{}", screaming_snake(v));
            if !tags.contains_key(tag.as_str()) {
                em.emit(
                    fi,
                    *line,
                    PROTOCOL_DRIFT,
                    format!("`Msg::{v}` has no wire tag const `{tag}`; add it to the tag table"),
                );
            }
        }
    }
    let mut by_value: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (name, c) in &tags {
        if let Some(fi) = file_of(&c.file) {
            if !expected.contains_key(*name) {
                em.emit(
                    fi,
                    c.line,
                    PROTOCOL_DRIFT,
                    format!(
                        "wire tag `{name}` names no `Msg` variant; dead tag or renamed message"
                    ),
                );
            }
        }
        if let Some(v) = c.value {
            by_value.entry(v).or_default().push(name);
        }
    }
    for (value, names) in &by_value {
        if names.len() > 1 {
            for name in &names[1..] {
                let c = tags[*name];
                if let Some(fi) = file_of(&c.file) {
                    em.emit(
                        fi,
                        c.line,
                        PROTOCOL_DRIFT,
                        format!(
                            "wire tag `{name}` reuses value {value} (also `{}`); \
                             tags must be unique on the wire",
                            names[0]
                        ),
                    );
                }
            }
        }
    }

    // Match coverage: engine matches over `Msg`, decode matches over
    // `MSG_*` consts.
    let all_variants: BTreeSet<&str> = msg.variants.iter().map(|(v, _)| v.as_str()).collect();
    let all_tags: BTreeSet<&str> = tags.keys().copied().collect();
    for (file_idx, f) in files.iter().enumerate() {
        for_each_match(f.tree, &mut |m| {
            let mut covered_variants: BTreeSet<&str> = BTreeSet::new();
            let mut covered_tags: BTreeSet<&str> = BTreeSet::new();
            let mut wildcard = false;
            let mut other_pats = false;
            for arm in &m.arms {
                for pat in &arm.pats {
                    let path = &pat.path;
                    if pat.is_wildcard {
                        wildcard = true;
                    } else if path.len() >= 2 && path[path.len() - 2] == "Msg" {
                        covered_variants.insert(path.last().expect("len>=2").as_str());
                    } else if path.last().is_some_and(|s| s.starts_with("MSG_")) {
                        covered_tags.insert(path.last().expect("non-empty").as_str());
                    } else {
                        other_pats = true;
                    }
                }
            }
            if other_pats {
                return; // Mixed match; not a protocol dispatch.
            }
            // Single-variant accessors (`match m { Msg::X {..} => …,
            // _ => None }`) are `if let` in match clothing — exempt.
            // A wildcard is only drift once the match is
            // dispatch-shaped, i.e. already enumerates >= 2 variants.
            if covered_variants.len() >= 2 && wildcard {
                let missing: Vec<&str> = all_variants
                    .difference(&covered_variants)
                    .copied()
                    .collect();
                if !missing.is_empty() {
                    em.emit(
                        file_idx,
                        m.line,
                        PROTOCOL_DRIFT,
                        format!(
                            "match over `Msg` hides {} variant(s) behind a wildcard arm \
                             ({}); enumerate them so a new message type fails loudly here",
                            missing.len(),
                            missing.join(", "),
                        ),
                    );
                }
            }
            if !covered_tags.is_empty() {
                let missing: Vec<&str> = all_tags.difference(&covered_tags).copied().collect();
                if !missing.is_empty() {
                    em.emit(
                        file_idx,
                        m.line,
                        PROTOCOL_DRIFT,
                        format!(
                            "decode match handles {}/{} wire tags; missing: {} — an \
                             unhandled known tag decodes as garbage",
                            covered_tags.len(),
                            all_tags.len(),
                            missing.join(", "),
                        ),
                    );
                }
            }
        });
    }
}

/// `CamelCase2` → `CAMEL_CASE2`.
fn screaming_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_uppercase());
    }
    out
}

/// Calls `f` on every match expression in the file, production code
/// only (test mods excluded by the emitter's span check).
fn for_each_match<'a>(tree: &'a SourceFile, f: &mut impl FnMut(&'a crate::ast::MatchExpr)) {
    walk_items(&tree.items, &ItemCtx::default(), &mut |_ctx, item| {
        if let Item::Fn(fun) = item {
            if let Some(body) = &fun.body {
                crate::ast::walk_block_exprs(body, &mut |e| {
                    if let Expr::Match(m) = e {
                        f(m);
                    }
                });
            }
        }
    });
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

/// Builds the cross-crate lock-acquisition graph and reports cycles.
///
/// Nodes are declared locks (`Type::field` / static name, from the
/// [`WorkspaceIndex`]). An edge A → B is recorded when B is acquired
/// while A is held:
///
/// - directly — a `.lock()/.read()/.write()` under a live `let` guard
///   (guard liveness is the same dataflow as `guard-across-send`) or
///   a same-statement earlier acquisition (`self.a.lock()` feeding a
///   call that locks `self.b`),
/// - transitively — a call made under a guard, where the (uniquely
///   named) callee may acquire locks, computed as a fixpoint over the
///   call graph.
///
/// Any cycle (including a self-edge: re-acquiring a held lock) is a
/// latent deadlock; one diagnostic is emitted per strongly-connected
/// component, anchored at the edge completing the cycle.
fn lock_order(
    files: &[PassFile<'_>],
    ix: &WorkspaceIndex,
    explicit: bool,
    em: &mut Emitter<'_, '_>,
) {
    // Phase A: per-fn summaries.
    struct FnSummary {
        name: String,
        acquired: BTreeSet<String>,
        /// (held lock, acquired lock, file, line)
        edges: Vec<(String, String, usize, u32)>,
        /// (held lock, callee name, file, line)
        calls_under: Vec<(String, String, usize, u32)>,
        /// All callee names (for may-acquire propagation).
        calls: BTreeSet<String>,
    }
    let mut fns: Vec<FnSummary> = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        if !explicit && !in_lock_order_scope(f.rel) {
            continue;
        }
        walk_items(&f.tree.items, &ItemCtx::default(), &mut |ctx, item| {
            if ctx.in_test_mod {
                return;
            }
            let Item::Fn(fun) = item else {
                return;
            };
            let Some(body) = &fun.body else {
                return;
            };
            let mut walker = LockWalker {
                ix,
                impl_ty: ctx.impl_ty.as_deref(),
                file_idx,
                held: Vec::new(),
                depth: 0,
                stmt_locks: Vec::new(),
                acquired: BTreeSet::new(),
                edges: Vec::new(),
                calls_under: Vec::new(),
                calls: BTreeSet::new(),
            };
            walker.block(body);
            fns.push(FnSummary {
                name: fun.name.clone(),
                acquired: walker.acquired,
                edges: walker.edges,
                calls_under: walker.calls_under,
                calls: walker.calls,
            });
        });
    }

    // Phase B: may-acquire fixpoint over uniquely-named callees. A
    // name shared by several fns is skipped — following it would wire
    // unrelated `new`/`tick` implementations together and fabricate
    // cycles.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, s) in fns.iter().enumerate() {
        by_name.entry(&s.name).or_default().push(i);
    }
    let unique: BTreeMap<&str, usize> = by_name
        .iter()
        .filter(|(_, v)| v.len() == 1)
        .map(|(n, v)| (*n, v[0]))
        .collect();
    let mut may_acquire: Vec<BTreeSet<String>> = fns.iter().map(|s| s.acquired.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in &fns[i].calls {
                if let Some(&j) = unique.get(callee.as_str()) {
                    for l in &may_acquire[j] {
                        if !may_acquire[i].contains(l) {
                            add.insert(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                may_acquire[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase C: assemble the edge set. First writer wins per (A, B) so
    // anchors are deterministic (files and fns walk in order).
    let mut graph: BTreeMap<String, BTreeMap<String, (usize, u32)>> = BTreeMap::new();
    let mut add_edge = |a: &str, b: &str, site: (usize, u32)| {
        graph
            .entry(a.to_string())
            .or_default()
            .entry(b.to_string())
            .or_insert(site);
    };
    for s in &fns {
        for (a, b, fi, line) in &s.edges {
            add_edge(a, b, (*fi, *line));
        }
        for (held, callee, fi, line) in &s.calls_under {
            if let Some(&j) = unique.get(callee.as_str()) {
                for b in &may_acquire[j] {
                    add_edge(held, b, (*fi, *line));
                }
            }
        }
    }

    // Phase D: cycles. Self-edges are immediate re-entrancy deadlocks;
    // larger cycles are reported once per strongly-connected component.
    for (a, succs) in &graph {
        if let Some(&(fi, line)) = succs.get(a) {
            em.emit(
                fi,
                line,
                LOCK_ORDER,
                format!(
                    "lock `{a}` acquired while already held (self-cycle); \
                     std::sync locks are not re-entrant — this deadlocks"
                ),
            );
        }
    }
    for comp in sccs(&graph) {
        if comp.len() < 2 {
            continue;
        }
        let set: BTreeSet<&str> = comp.iter().map(String::as_str).collect();
        // Reconstruct one representative cycle: greedy walk from the
        // smallest node through in-component successors.
        let start = comp.iter().min().expect("non-empty").clone();
        let mut path = vec![start.clone()];
        let mut seen: BTreeSet<String> = BTreeSet::new();
        seen.insert(start.clone());
        let mut cur = start.clone();
        loop {
            let next = graph[&cur].keys().find(|k| {
                // Self-loops already got their own diagnostic above;
                // without this the walk would "close" a multi-node
                // cycle through one, reporting `A → A`.
                set.contains(k.as_str()) && **k != cur && (**k == start || !seen.contains(*k))
            });
            match next {
                Some(n) if *n == start => break,
                Some(n) => {
                    path.push(n.clone());
                    seen.insert(n.clone());
                    cur = n.clone();
                }
                None => break, // Defensive; an SCC always closes.
            }
        }
        let (fi, line) = graph[path.last().expect("non-empty")][&start];
        let cycle = format!("{} → {}", path.join(" → "), start);
        em.emit(
            fi,
            line,
            LOCK_ORDER,
            format!(
                "lock-order cycle: {cycle}; two threads taking these locks in \
                 opposite orders deadlock — pick one global order"
            ),
        );
    }

    /// Strongly-connected components (Kosaraju), deterministic order.
    fn sccs(graph: &BTreeMap<String, BTreeMap<String, (usize, u32)>>) -> Vec<Vec<String>> {
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for (a, succs) in graph {
            nodes.insert(a);
            for b in succs.keys() {
                nodes.insert(b);
            }
        }
        let mut order = Vec::new();
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        fn dfs1<'g>(
            n: &'g str,
            graph: &'g BTreeMap<String, BTreeMap<String, (usize, u32)>>,
            visited: &mut BTreeSet<&'g str>,
            order: &mut Vec<&'g str>,
        ) {
            if !visited.insert(n) {
                return;
            }
            if let Some(succs) = graph.get(n) {
                for b in succs.keys() {
                    dfs1(b, graph, visited, order);
                }
            }
            order.push(n);
        }
        for n in &nodes {
            dfs1(n, graph, &mut visited, &mut order);
        }
        let mut rev: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, succs) in graph {
            for b in succs.keys() {
                rev.entry(b).or_default().insert(a);
            }
        }
        let mut comp_of: BTreeMap<&str, usize> = BTreeMap::new();
        let mut comps: Vec<Vec<String>> = Vec::new();
        for n in order.iter().rev() {
            if comp_of.contains_key(n) {
                continue;
            }
            let id = comps.len();
            let mut stack = vec![*n];
            let mut members = Vec::new();
            while let Some(m) = stack.pop() {
                if comp_of.contains_key(m) {
                    continue;
                }
                comp_of.insert(m, id);
                members.push(m.to_string());
                if let Some(preds) = rev.get(m) {
                    for p in preds {
                        if !comp_of.contains_key(*p) {
                            stack.push(p);
                        }
                    }
                }
            }
            members.sort();
            comps.push(members);
        }
        comps
    }
}

/// The guard-liveness walker for lock-order: like the
/// `guard-across-send` dataflow, but tracking which *lock* each guard
/// holds, plus same-statement temporary acquisitions and calls made
/// under a guard.
struct LockWalker<'a> {
    ix: &'a WorkspaceIndex,
    impl_ty: Option<&'a str>,
    file_idx: usize,
    /// Live let-bound guards: (binding name, lock id, owning scope).
    held: Vec<(String, Option<String>, u32)>,
    depth: u32,
    /// Locks acquired earlier in the current statement (temporaries
    /// live to the statement's end).
    stmt_locks: Vec<String>,
    acquired: BTreeSet<String>,
    edges: Vec<(String, String, usize, u32)>,
    calls_under: Vec<(String, String, usize, u32)>,
    calls: BTreeSet<String>,
}

impl LockWalker<'_> {
    fn block(&mut self, b: &Block) {
        self.depth += 1;
        for stmt in &b.stmts {
            self.stmt_locks.clear();
            match stmt {
                Stmt::Let(l) => self.let_stmt(l),
                Stmt::Expr(e) => self.expr(e),
                Stmt::Item(_) => {}
            }
        }
        self.stmt_locks.clear();
        let depth = self.depth;
        self.held.retain(|&(_, _, scope)| scope < depth);
        self.depth -= 1;
    }

    fn let_stmt(&mut self, l: &LetStmt) {
        if let Some(name) = &l.name {
            if let Some(recv) = guard_init(l.init.as_ref()) {
                // Walk the receiver chain first — `self.a.lock()` can
                // itself sit under other guards — then register.
                self.expr(recv);
                let lock = self.resolve(recv);
                if let Some(lock) = &lock {
                    self.acquire(lock.clone(), l.line);
                }
                self.held.retain(|(n, _, _)| n != name);
                self.held.push((name.clone(), lock, self.depth));
                return;
            }
            if let Some(Expr::Path(p)) = &l.init {
                if p.segs.len() == 1 {
                    if let Some(pos) = self.held.iter().position(|(n, _, _)| *n == p.segs[0].0) {
                        let (_, lock, _) = self.held.remove(pos);
                        if name != "_" {
                            self.held.push((name.clone(), lock, self.depth));
                        }
                        return;
                    }
                }
            }
        }
        if let Some(init) = &l.init {
            self.expr(init);
        }
        if let Some(eb) = &l.else_block {
            self.block(eb);
        }
    }

    /// Records an acquisition of `lock`: edges from every held lock
    /// and every earlier same-statement temporary.
    fn acquire(&mut self, lock: String, line: u32) {
        self.acquired.insert(lock.clone());
        let mut froms: Vec<String> = self.held.iter().filter_map(|(_, l, _)| l.clone()).collect();
        froms.extend(self.stmt_locks.iter().cloned());
        for a in froms {
            self.edges.push((a, lock.clone(), self.file_idx, line));
        }
        self.stmt_locks.push(lock);
    }

    /// Resolves a lock receiver to a declared lock id:
    /// `self.f` via the impl type, any `.f` via a unique field name,
    /// a path ending in a known static.
    fn resolve(&self, recv: &Expr) -> Option<String> {
        let mut e = recv;
        while let Expr::Ref { inner, .. } = e {
            e = inner;
        }
        match e {
            Expr::Path(p) => {
                let last = &p.segs.last()?.0;
                self.ix.lock_ids.contains_key(last).then(|| last.clone())
            }
            Expr::Field { recv, name, .. } => {
                if let Expr::Path(p) = recv.as_ref() {
                    if p.segs.len() == 1 && p.segs[0].0 == "self" {
                        if let Some(ty) = self.impl_ty {
                            let id = format!("{ty}::{name}");
                            if self.ix.lock_ids.contains_key(&id) {
                                return Some(id);
                            }
                        }
                    }
                }
                match self.ix.lock_fields.get(name) {
                    Some(decls) if decls.len() == 1 => Some(decls[0].id.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                self.expr(recv);
                if args.is_empty() && matches!(method.as_str(), "lock" | "read" | "write") {
                    if let Some(lock) = self.resolve(recv) {
                        self.acquire(lock, *line);
                    }
                } else if matches!(
                    recv.as_ref(),
                    Expr::Path(p) if p.segs.len() == 1 && p.segs[0].0 == "self"
                ) {
                    // Only `self.method()` resolves interprocedurally.
                    // A bare method name on any other receiver
                    // (`heap.push(..)`) collides with container
                    // methods and would fabricate edges.
                    self.call(method, *line);
                }
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Call { callee, args, line } => {
                if let Expr::Path(p) = callee.as_ref() {
                    // `drop(g)` ends a guard's live-range.
                    if p.segs.len() == 1 && p.segs[0].0 == "drop" && args.len() == 1 {
                        if let Expr::Path(arg) = &args[0] {
                            if arg.segs.len() == 1 {
                                let name = arg.segs[0].0.clone();
                                self.held.retain(|(n, _, _)| *n != name);
                                return;
                            }
                        }
                    }
                    if let Some((callee_name, _)) = p.segs.last() {
                        self.call(callee_name, *line);
                    }
                } else {
                    self.expr(callee);
                }
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Block(b) => self.block(b),
            Expr::If {
                cond, then, else_, ..
            } => {
                self.expr(cond);
                self.block(then);
                if let Some(e2) = else_ {
                    self.expr(e2);
                }
            }
            Expr::Match(m) => {
                self.expr(&m.scrutinee);
                for arm in &m.arms {
                    self.expr(&arm.body);
                }
            }
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Loop { body, .. } => self.block(body),
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Field { recv, .. } => self.expr(recv),
            Expr::Index { recv, index, .. } => {
                self.expr(recv);
                self.expr(index);
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.expr(v);
                }
            }
            Expr::MacroCall { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Ref { inner, .. } => self.expr(inner),
            Expr::Seq { parts, .. } => {
                for p in parts {
                    self.expr(p);
                }
            }
            Expr::Path(_) | Expr::Lit { .. } | Expr::Unknown { .. } => {}
        }
    }

    /// Records a call event: the callee for may-acquire propagation,
    /// and a call-under-guard when any resolved lock is held.
    fn call(&mut self, callee: &str, line: u32) {
        self.calls.insert(callee.to_string());
        let held: Vec<String> = self.held.iter().filter_map(|(_, l, _)| l.clone()).collect();
        for a in held {
            self.calls_under
                .push((a, callee.to_string(), self.file_idx, line));
        }
    }
}
