//! The lint rules: repo-specific protocol invariants, token-level.
//!
//! Every rule reports `file:line` plus a rule id; findings can be
//! suppressed per-line with `// ring-lint: allow(<rule>)` (see
//! [`crate::lexer`]). The rules and their rationale are documented in
//! DESIGN.md §9.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{Lexed, TokenKind};

/// Rule id: ambient monotonic/wall-clock time in deterministic paths.
pub const AMBIENT_TIME: &str = "ambient-time";
/// Rule id: ambient (OS) entropy in deterministic paths.
pub const AMBIENT_ENTROPY: &str = "ambient-entropy";
/// Rule id: lock guard held across a fabric send.
pub const GUARD_ACROSS_SEND: &str = "guard-across-send";
/// Rule id: `Ordering::Relaxed` outside the documented allowlist.
pub const RELAXED_ORDERING: &str = "relaxed-ordering";
/// Rule id: iteration over a hash table feeding seeded protocol paths.
pub const HASHMAP_ITERATION: &str = "hashmap-iteration";
/// Rule id: shared protocol step without a `// tla:` marker tying it to
/// an action of the TLA+ spec (or naming an action that does not exist).
pub const MODEL_DRIFT: &str = "model-drift";
/// Rule id (tree engine only): a cycle in the cross-crate
/// lock-acquisition graph.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule id (tree engine only): the `Msg` enum, the wire tag consts,
/// and the transport/engine `match`es disagree about the protocol.
pub const PROTOCOL_DRIFT: &str = "protocol-drift";
/// Rule id (tree engine only): a deep copy of a zero-copy `Payload`
/// on a hot path.
pub const PAYLOAD_COPY: &str = "payload-copy";

/// All rule ids, in reporting order. The last three run only under the
/// tree engine ([`crate::Mode::Tree`]).
pub const ALL_RULES: [&str; 9] = [
    AMBIENT_TIME,
    AMBIENT_ENTROPY,
    GUARD_ACROSS_SEND,
    RELAXED_ORDERING,
    HASHMAP_ITERATION,
    MODEL_DRIFT,
    LOCK_ORDER,
    PROTOCOL_DRIFT,
    PAYLOAD_COPY,
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file lint context.
pub struct FileContext<'a> {
    /// Workspace-relative path (diagnostics use this verbatim).
    pub rel_path: &'a str,
    /// Raw source text (the lexer drops comments; `model-drift` reads
    /// the `// tla:` markers from here).
    pub raw: &'a str,
    /// Lexed source.
    pub lexed: &'a Lexed,
    /// Whether the deterministic-path rules apply to this file.
    pub deterministic: bool,
    /// Whether the model-drift rule applies to this file.
    pub model_mirror: bool,
    /// Whether the file is on the relaxed-ordering allowlist.
    pub relaxed_allowlisted: bool,
    /// Hash-typed names collected crate-wide (for hashmap-iteration).
    pub hash_names: &'a BTreeSet<String>,
    /// Top-level definition names of the TLA+ spec (empty when the spec
    /// file is absent, which disables model-drift).
    pub tla_actions: &'a BTreeSet<String>,
}

/// True if `rel_path` is inside a deterministic simulation path: the
/// `src/` trees of `ring-net`, `ring-chaos`, `ring-core`, `ring-wire`
/// and `ring-server`. The wire codec must be a pure function of its
/// input; the server crate sits on the protocol's hot path and reads
/// time only through `ring_net::clock`, so a node behaves identically
/// under the simulated fabric and TCP. Bench and measurement code is
/// exempt by construction (it lives in `crates/bench`), as are test
/// trees (`tests/` is never scanned and inline `#[cfg(test)] mod`
/// blocks are skipped token-wise).
pub fn is_deterministic_path(rel_path: &str) -> bool {
    [
        "crates/net/src/",
        "crates/chaos/src/",
        "crates/core/src/",
        "crates/wire/src/",
        "crates/server/src/",
        "crates/model/src/",
    ]
    .iter()
    .any(|p| rel_path.starts_with(p))
}

/// True if `rel_path` holds protocol logic mirrored by the TLA+ spec:
/// the shared step functions under `crates/core/src/protocol/`. Every
/// `pub fn` there must carry a `// tla: <Action>` marker (see
/// [`model_drift`]).
pub fn is_model_mirror_path(rel_path: &str) -> bool {
    rel_path.starts_with("crates/core/src/protocol/")
}

/// Parses the top-level definition names of a TLA+ module: lines of the
/// form `Name ==` or `Name(args) ==` starting in column 0. Actions,
/// invariants, and helper operators all count — the marker namespace is
/// the module's namespace.
pub fn parse_tla_actions(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in text.lines() {
        let Some(first) = line.chars().next() else {
            continue;
        };
        if !(first.is_ascii_alphabetic() || first == '_') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let rest = line[name.len()..].trim_start();
        let rest = if let Some(stripped) = rest.strip_prefix('(') {
            match stripped.split_once(')') {
                Some((_, after)) => after.trim_start(),
                None => continue,
            }
        } else {
            rest
        };
        if rest.starts_with("==") {
            names.insert(name);
        }
    }
    names
}

/// Line spans covered by `#[cfg(test)] mod ... { ... }`, so rules can
/// skip inline unit tests (ambient time/entropy is fine there).
pub fn test_mod_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < t.len() {
        let is_cfg_test = t[i].kind == TokenKind::Punct('#')
            && t[i + 1].kind == TokenKind::Punct('[')
            && t[i + 2].kind == TokenKind::Ident("cfg".into())
            && t[i + 3].kind == TokenKind::Punct('(')
            && t[i + 4].kind == TokenKind::Ident("test".into())
            && t[i + 5].kind == TokenKind::Punct(')')
            && t[i + 6].kind == TokenKind::Punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Expect `mod <name> {` next; anything else (for example
        // `#[cfg(test)]` on a single item) is skipped conservatively.
        let mut j = i + 7;
        if t.get(j).map(|tk| &tk.kind) != Some(&TokenKind::Ident("mod".into())) {
            i = j;
            continue;
        }
        j += 1; // mod name
        j += 1; // expect `{`
        if t.get(j).map(|tk| &tk.kind) != Some(&TokenKind::Punct('{')) {
            i = j;
            continue;
        }
        let start_line = t[i].line;
        let mut depth = 0i32;
        while j < t.len() {
            match t[j].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end_line = t.get(j).map(|tk| tk.line).unwrap_or(u32::MAX);
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

pub(crate) fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

fn ident_at(lexed: &Lexed, i: usize) -> Option<&str> {
    match lexed.tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(lexed: &Lexed, i: usize, c: char) -> bool {
    lexed.tokens.get(i).map(|t| &t.kind) == Some(&TokenKind::Punct(c))
}

/// `Ident(first) :: Ident(second) (` starting at token `i`.
fn path_call(lexed: &Lexed, i: usize, first: &str, second: &str) -> bool {
    ident_at(lexed, i) == Some(first)
        && punct_at(lexed, i + 1, ':')
        && punct_at(lexed, i + 2, ':')
        && ident_at(lexed, i + 3) == Some(second)
        && punct_at(lexed, i + 4, '(')
}

/// A finding that a suppression mechanism swallowed: `(line, rule)`.
/// The stale-suppression checker uses these to tell live directives
/// and allowlist entries from dead ones.
pub type SuppressedHit = (u32, &'static str);

/// Runs every applicable rule over one file.
pub fn lint_file(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    lint_file_recording(ctx, &mut Vec::new())
}

/// [`lint_file`], also recording suppressed findings into `sup`.
pub fn lint_file_recording(ctx: &FileContext<'_>, sup: &mut Vec<SuppressedHit>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let spans = test_mod_spans(ctx.lexed);
    if ctx.deterministic {
        ambient_time(ctx, &spans, &mut out, sup);
        ambient_entropy(ctx, &spans, &mut out, sup);
        hashmap_iteration(ctx, &spans, &mut out, sup);
    }
    if ctx.model_mirror && !ctx.tla_actions.is_empty() {
        model_drift(ctx, &spans, &mut out, sup);
    }
    guard_across_send(ctx, &spans, &mut out, sup);
    relaxed_ordering(ctx, &spans, &mut out, sup);
    out.sort();
    out
}

/// `ambient-time`: `Instant::now()` / `SystemTime::now()` in a
/// deterministic path. The clock must come from `ring_net::clock` (the
/// fabric clock) so there is exactly one audited source of time.
fn ambient_time(
    ctx: &FileContext<'_>,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    for i in 0..ctx.lexed.tokens.len() {
        for (ty, hint) in [
            ("Instant", "use ring_net::clock::now() instead"),
            (
                "SystemTime",
                "wall-clock time has no deterministic consumer; derive from the fabric clock",
            ),
        ] {
            if path_call(ctx.lexed, i, ty, "now") {
                let line = ctx.lexed.tokens[i].line;
                if in_spans(spans, line) {
                    continue;
                }
                if ctx.lexed.allowed(AMBIENT_TIME, line) {
                    sup.push((line, AMBIENT_TIME));
                    continue;
                }
                out.push(Diagnostic {
                    file: ctx.rel_path.to_string(),
                    line,
                    rule: AMBIENT_TIME,
                    message: format!("ambient `{ty}::now()` in a deterministic sim path; {hint}"),
                });
            }
        }
    }
}

/// `ambient-entropy`: OS randomness in a deterministic path. All
/// randomness must be a pure function of `ClusterSpec::seed` (via
/// `derived_seed`) so a printed `u64` replays the run.
fn ambient_entropy(
    ctx: &FileContext<'_>,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    const FORBIDDEN: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "getrandom"];
    for (i, tok) in ctx.lexed.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if !FORBIDDEN.contains(&name.as_str()) {
            continue;
        }
        // Require a call or path position (`name(` / `name::` / `::name`)
        // so a mere mention in an identifier like `no_thread_rng` — which
        // would already not match exactly — or a struct field cannot trip.
        let call_like = punct_at(ctx.lexed, i + 1, '(')
            || (punct_at(ctx.lexed, i + 1, ':') && punct_at(ctx.lexed, i + 2, ':'))
            || (i >= 2 && punct_at(ctx.lexed, i - 1, ':') && punct_at(ctx.lexed, i - 2, ':'));
        if !call_like {
            continue;
        }
        let line = tok.line;
        if in_spans(spans, line) {
            continue;
        }
        if ctx.lexed.allowed(AMBIENT_ENTROPY, line) {
            sup.push((line, AMBIENT_ENTROPY));
            continue;
        }
        out.push(Diagnostic {
            file: ctx.rel_path.to_string(),
            line,
            rule: AMBIENT_ENTROPY,
            message: format!(
                "ambient entropy source `{name}` in a deterministic sim path; \
                 seed RNGs from ClusterSpec::derived_seed"
            ),
        });
    }
}

/// `guard-across-send`: a `let`-bound `Mutex`/`RwLock` guard still live
/// when a fabric `send`/`multicast`/`post` happens. Under a partition
/// the send's target may be wedged; parking a guard across it is how a
/// local stall becomes a cluster-wide deadlock.
///
/// Detection is scope-shaped, not type-shaped: a statement
/// `let g = <expr>.lock();` (or `.read()` / `.write()` with no
/// arguments, optionally followed by `.unwrap()` / `.expect(..)`)
/// starts a guard live-range that ends at `drop(g)`, at a shadowing
/// re-`let`, or when its block closes.
fn guard_across_send(
    ctx: &FileContext<'_>,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    const SENDS: [&str; 3] = ["send", "multicast", "post"];
    struct Guard {
        name: String,
        depth: i32,
        line: u32,
    }
    let t = &ctx.lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < t.len() {
        match &t[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Ident(id) if id == "let" => {
                if let Some((name, end)) = guard_binding(ctx.lexed, i) {
                    guards.retain(|g| g.name != name); // Shadowing re-let.
                    guards.push(Guard {
                        name,
                        depth,
                        line: t[i].line,
                    });
                    i = end;
                    continue;
                }
            }
            TokenKind::Ident(id) if id == "drop" && punct_at(ctx.lexed, i + 1, '(') => {
                if let Some(name) = ident_at(ctx.lexed, i + 2) {
                    if punct_at(ctx.lexed, i + 3, ')') {
                        guards.retain(|g| g.name != name);
                    }
                }
            }
            TokenKind::Ident(id) if SENDS.contains(&id.as_str()) => {
                let method_call =
                    i >= 1 && punct_at(ctx.lexed, i - 1, '.') && punct_at(ctx.lexed, i + 1, '(');
                if method_call && !guards.is_empty() {
                    let line = t[i].line;
                    if !in_spans(spans, line) && ctx.lexed.allowed(GUARD_ACROSS_SEND, line) {
                        sup.push((line, GUARD_ACROSS_SEND));
                    }
                    if !in_spans(spans, line) && !ctx.lexed.allowed(GUARD_ACROSS_SEND, line) {
                        let g = guards.last().expect("non-empty");
                        out.push(Diagnostic {
                            file: ctx.rel_path.to_string(),
                            line,
                            rule: GUARD_ACROSS_SEND,
                            message: format!(
                                "fabric `.{id}()` while lock guard `{}` (line {}) is held; \
                                 drop the guard first — a send under partition can block \
                                 and deadlock every thread queued on the lock",
                                g.name, g.line
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// If the statement starting at `let` (token `i`) binds a lock guard,
/// returns `(name, index_of_semicolon)`.
fn guard_binding(lexed: &Lexed, i: usize) -> Option<(String, usize)> {
    let t = &lexed.tokens;
    let mut j = i + 1;
    if ident_at(lexed, j) == Some("mut") {
        j += 1;
    }
    let name = match ident_at(lexed, j) {
        Some(n) => n.to_string(),
        None => return None, // Pattern binding; not a simple guard.
    };
    // Find the terminating `;` at zero additional nesting.
    let mut k = j + 1;
    let mut nest = 0i32;
    while k < t.len() {
        match t[k].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => nest += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                if nest == 0 {
                    return None; // Block ended before `;` (e.g. `let` in a condition).
                }
                nest -= 1;
            }
            TokenKind::Punct(';') if nest == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if k >= t.len() {
        return None;
    }
    // Does the expression end with `.lock()` / `.read()` / `.write()`
    // (zero-arg), optionally wrapped in `.unwrap()` / `.expect(_)`?
    let mut end = k; // index of `;`
    for _ in 0..2 {
        if end >= 4
            && punct_at(lexed, end - 1, ')')
            && punct_at(lexed, end - 2, '(')
            && punct_at(lexed, end - 4, '.')
            && ident_at(lexed, end - 3) == Some("unwrap")
        {
            end -= 4;
            continue;
        }
        if end >= 5
            && punct_at(lexed, end - 1, ')')
            && matches!(
                t.get(end - 2).map(|tk| &tk.kind),
                Some(TokenKind::Literal(_))
            )
            && punct_at(lexed, end - 3, '(')
            && punct_at(lexed, end - 5, '.')
            && ident_at(lexed, end - 4) == Some("expect")
        {
            end -= 5;
            continue;
        }
        break;
    }
    let is_guard = end >= 4
        && punct_at(lexed, end - 1, ')')
        && punct_at(lexed, end - 2, '(')
        && punct_at(lexed, end - 4, '.')
        && matches!(ident_at(lexed, end - 3), Some("lock" | "read" | "write"));
    if is_guard {
        Some((name, k))
    } else {
        None
    }
}

/// `relaxed-ordering`: `Ordering::Relaxed` outside the allowlist file
/// (`crates/verify/relaxed_allowlist.txt`), which documents why each
/// site is safe. Relaxed is correct for monotonic counters and advisory
/// mirrors; it is never correct for publish/observe pairs, and the
/// allowlist is where that argument has to be written down.
fn relaxed_ordering(
    ctx: &FileContext<'_>,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    for i in 0..ctx.lexed.tokens.len() {
        let is_relaxed = ident_at(ctx.lexed, i + 3) == Some("Relaxed")
            && punct_at(ctx.lexed, i + 1, ':')
            && punct_at(ctx.lexed, i + 2, ':')
            && matches!(ident_at(ctx.lexed, i), Some("Ordering" | "AtomicOrdering"));
        if !is_relaxed {
            continue;
        }
        let line = ctx.lexed.tokens[i].line;
        if in_spans(spans, line) {
            continue;
        }
        if ctx.relaxed_allowlisted || ctx.lexed.allowed(RELAXED_ORDERING, line) {
            sup.push((line, RELAXED_ORDERING));
            continue;
        }
        out.push(Diagnostic {
            file: ctx.rel_path.to_string(),
            line,
            rule: RELAXED_ORDERING,
            message: "`Ordering::Relaxed` outside the allowlist; add the file to \
                      crates/verify/relaxed_allowlist.txt with a per-site justification \
                      or use Acquire/Release"
                .to_string(),
        });
    }
}

/// Collects names declared with a `HashMap`/`HashSet` type in one file:
/// fields and typed bindings (`name: HashMap<..>`) and seeded locals
/// (`let name = HashMap::new()`). Callers union the sets across a crate
/// so iteration over `self.field` in a sibling module is still caught.
pub fn collect_hash_names(lexed: &Lexed) -> BTreeSet<String> {
    let t = &lexed.tokens;
    let mut names = BTreeSet::new();
    for i in 0..t.len() {
        let TokenKind::Ident(id) = &t[i].kind else {
            continue;
        };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // `name: ... HashMap< ...`: walk back to the nearest `:` within
        // the statement and take the ident before it.
        let mut j = i;
        let mut found_colon = None;
        while j > 0 {
            j -= 1;
            match &t[j].kind {
                TokenKind::Punct(':') => {
                    // `::` is a path, keep walking.
                    if j > 0 && punct_at(lexed, j - 1, ':') {
                        j -= 1;
                        continue;
                    }
                    found_colon = Some(j);
                    break;
                }
                TokenKind::Punct(';')
                | TokenKind::Punct('{')
                | TokenKind::Punct('}')
                | TokenKind::Punct(',')
                | TokenKind::Punct('=')
                | TokenKind::Punct('(') => break,
                _ => continue,
            }
        }
        if let Some(c) = found_colon {
            if c > 0 {
                if let Some(name) = ident_at(lexed, c - 1) {
                    names.insert(name.to_string());
                    continue;
                }
            }
        }
        // `let [mut] name = HashMap::new()` (or with_capacity/default/from).
        if punct_at(lexed, i + 1, ':')
            && punct_at(lexed, i + 2, ':')
            && matches!(
                ident_at(lexed, i + 3),
                Some("new" | "with_capacity" | "default" | "from")
            )
        {
            let mut j = i;
            while j > 0 {
                j -= 1;
                match &t[j].kind {
                    TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') => break,
                    TokenKind::Ident(kw) if kw == "let" => {
                        let mut k = j + 1;
                        if ident_at(lexed, k) == Some("mut") {
                            k += 1;
                        }
                        if let Some(name) = ident_at(lexed, k) {
                            names.insert(name.to_string());
                        }
                        break;
                    }
                    _ => continue,
                }
            }
        }
    }
    names
}

/// `hashmap-iteration`: iterating a `HashMap`/`HashSet` in a seeded
/// path. Hash iteration order is randomized per process; anything it
/// feeds — retransmit order, recovery order, checker verdict text —
/// diverges between runs with the same seed. Use `BTreeMap`/`BTreeSet`
/// or sort before iterating.
fn hashmap_iteration(
    ctx: &FileContext<'_>,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    const ITERS: [&str; 9] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_keys",
        "into_values",
    ];
    let t = &ctx.lexed.tokens;
    for (i, tok) in t.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if !ctx.hash_names.contains(name) {
            continue;
        }
        // `name.iter()` and friends.
        let method = if punct_at(ctx.lexed, i + 1, '.') {
            ident_at(ctx.lexed, i + 2)
                .filter(|m| ITERS.contains(m) && punct_at(ctx.lexed, i + 3, '('))
        } else {
            None
        };
        // `for x in [&[mut]] name {` / `for x in name.iter()` is covered
        // by the method case; here catch direct `in name {`.
        let for_loop = ident_at(ctx.lexed, i.wrapping_sub(1)) == Some("in")
            || (punct_at(ctx.lexed, i.wrapping_sub(1), '&')
                && ident_at(ctx.lexed, i.wrapping_sub(2)) == Some("in"))
            || (ident_at(ctx.lexed, i.wrapping_sub(1)) == Some("mut")
                && punct_at(ctx.lexed, i.wrapping_sub(2), '&')
                && ident_at(ctx.lexed, i.wrapping_sub(3)) == Some("in"));
        let for_loop = for_loop && punct_at(ctx.lexed, i + 1, '{');
        if method.is_none() && !for_loop {
            continue;
        }
        let line = tok.line;
        if in_spans(spans, line) {
            continue;
        }
        if ctx.lexed.allowed(HASHMAP_ITERATION, line) {
            sup.push((line, HASHMAP_ITERATION));
            continue;
        }
        let how = method
            .map(|m| format!("`.{m}()`"))
            .unwrap_or_else(|| "a `for` loop".into());
        out.push(Diagnostic {
            file: ctx.rel_path.to_string(),
            line,
            rule: HASHMAP_ITERATION,
            message: format!(
                "iteration over hash-ordered `{name}` via {how} in a seeded path; \
                 hash order is process-random — use BTreeMap/BTreeSet or sort first"
            ),
        });
    }
}

/// `model-drift`: every `pub fn` in the shared protocol-steps module
/// must carry a `// tla: <Action>` marker in the comment block directly
/// above it, and the marker must name a definition that actually exists
/// in `RingWriteSemantics.tla`. The step functions are the ground truth
/// both the live node and the explicit-state checker execute; the
/// markers are the audited map between them and the spec, so a renamed
/// or deleted spec action — or an unmarked new transition — fails the
/// lint instead of silently diverging.
pub(crate) fn model_drift(
    ctx: &FileContext<'_>,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    let lines: Vec<&str> = ctx.raw.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        let is_pub_fn = trimmed.starts_with("pub fn ")
            || trimmed.starts_with("pub(crate) fn ")
            || trimmed.starts_with("pub(super) fn ");
        if !is_pub_fn {
            continue;
        }
        let after_fn = trimmed
            .split_once("fn ")
            .map(|(_, rest)| rest)
            .unwrap_or("");
        let fn_name: String = after_fn
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let line_no = (idx + 1) as u32;
        if in_spans(spans, line_no) {
            continue;
        }
        if ctx.lexed.allowed(MODEL_DRIFT, line_no) {
            sup.push((line_no, MODEL_DRIFT));
            continue;
        }
        // Walk the contiguous comment/attribute block directly above
        // the `pub fn` looking for a `// tla: <Action>` marker.
        let mut marker: Option<&str> = None;
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let above = lines[j].trim_start();
            if above.starts_with("#[") || above.starts_with("#!") {
                continue; // Attributes don't break the block.
            }
            if !above.starts_with("//") {
                break;
            }
            let comment = above.trim_start_matches('/').trim_start();
            if let Some(rest) = comment.strip_prefix("tla:") {
                marker = Some(rest.trim());
                break;
            }
        }
        match marker {
            None => out.push(Diagnostic {
                file: ctx.rel_path.to_string(),
                line: line_no,
                rule: MODEL_DRIFT,
                message: format!(
                    "protocol step `{fn_name}` has no `// tla: <Action>` marker; every \
                     shared transition must name the spec action it mirrors"
                ),
            }),
            Some(action) if !ctx.tla_actions.contains(action) => out.push(Diagnostic {
                file: ctx.rel_path.to_string(),
                line: line_no,
                rule: MODEL_DRIFT,
                message: format!(
                    "`// tla: {action}` on `{fn_name}` names no definition in the spec; \
                     the marker must match a top-level action of RingWriteSemantics.tla"
                ),
            }),
            Some(_) => {}
        }
    }
}

/// Loads the relaxed-ordering allowlist: one workspace-relative path
/// per non-comment line.
pub fn load_relaxed_allowlist(path: &Path) -> std::io::Result<BTreeSet<String>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}
