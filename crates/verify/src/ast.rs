//! The `ring-lint` v2 syntax tree.
//!
//! This is a *skeleton* AST, not a full Rust grammar: it models exactly
//! the structure the semantic passes reason about — item nesting, block
//! scopes, `let` bindings with their types, call/method-call chains,
//! `match` scrutinees and arm patterns — and collapses everything else
//! (operators, casts, generics) into ordered child sequences. The
//! parser ([`crate::parse`]) is loss-tolerant by design: unknown shapes
//! degrade to [`Expr::Unknown`] rather than failing, and only
//! *structural* damage (unbalanced delimiters, a truncated file) is
//! reported as a parse error.
//!
//! Line numbers are 1-based and refer to the token that anchors the
//! node (an `fn` keyword, a method name, a match arm's first pattern
//! token), matching the diagnostics contract of the token engine.

/// A parsed source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Structural parse errors. Non-empty means the tree is not
    /// trustworthy and tree-mode linting must abort with an internal
    /// error (exit code 2), never report partial findings.
    pub errors: Vec<ParseError>,
}

/// One structural parse error.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line the damage was detected on.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// `fn` (free, impl method, or trait default method).
    Fn(FnItem),
    /// `struct` with named or tuple fields.
    Struct(StructItem),
    /// `enum` with its variants.
    Enum(EnumItem),
    /// `impl [Trait for] Type { items }`.
    Impl(ImplBlock),
    /// `mod name { items }` or `mod name;`.
    Mod(ModItem),
    /// `trait Name { items }`.
    Trait(TraitItem),
    /// `use` tree, flattened to its identifiers.
    Use(UseItem),
    /// `const`/`static` with optional initializer.
    Const(ConstItem),
    /// Anything else (`type`, `macro_rules!`, `extern` blocks, …).
    Other {
        /// Line of the item's first token.
        line: u32,
    },
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// True for any `pub` form (`pub`, `pub(crate)`, `pub(super)`, …).
    pub is_pub: bool,
    /// Parameters (including `self` receivers, whose `name` is `self`).
    pub params: Vec<Param>,
    /// The body; `None` for trait method declarations.
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Simple binding name (`self` for receivers); `None` for complex
    /// patterns like `(a, b): (A, B)`.
    pub name: Option<String>,
    /// Declared type, empty for bare `self` receivers.
    pub ty: TypeStr,
}

/// A type annotation, kept as its token sequence.
#[derive(Debug, Default, Clone)]
pub struct TypeStr {
    /// The type's identifier/punct tokens, in order (e.g.
    /// `["Vec", "<", "Option", "<", "Payload", ">", ">"]`).
    pub toks: Vec<String>,
}

impl TypeStr {
    /// True if `name` appears as a standalone token of the type.
    pub fn mentions(&self, name: &str) -> bool {
        self.toks.iter().any(|t| t == name)
    }

    /// The outermost type name, skipping references and pointers
    /// (`&'a mut Mutex<T>` → `Mutex`).
    pub fn head(&self) -> Option<&str> {
        self.toks.iter().map(String::as_str).find(|t| {
            !matches!(*t, "&" | "*" | "mut" | "const" | "dyn" | "impl")
                && t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
    }

    /// Render for messages (`Mutex < T >` style, compacted).
    pub fn text(&self) -> String {
        self.toks
            .join(" ")
            .replace(" :: ", "::")
            .replace(" < ", "<")
            .replace(" > ", ">")
    }
}

/// A struct definition.
#[derive(Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Line of the `struct` keyword.
    pub line: u32,
    /// Named fields (tuple fields get positional names `0`, `1`, …).
    pub fields: Vec<Field>,
}

/// A named field (struct or enum-variant).
#[derive(Debug)]
pub struct Field {
    /// The field's name.
    pub name: String,
    /// Declared type.
    pub ty: TypeStr,
    /// Line of the field name.
    pub line: u32,
}

/// An enum definition.
#[derive(Debug)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// The variants, in declaration order.
    pub variants: Vec<Variant>,
}

/// One enum variant.
#[derive(Debug)]
pub struct Variant {
    /// The variant's name.
    pub name: String,
    /// Line of the variant name.
    pub line: u32,
    /// Fields (named or tuple-positional).
    pub fields: Vec<Field>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplBlock {
    /// Head identifier of the self type (`Foo` for `impl Foo<T>`).
    pub self_ty: String,
    /// Trait name for trait impls (`Transport` for
    /// `impl Transport for Foo`).
    pub trait_name: Option<String>,
    /// Items inside the block (fns, consts, `type` aliases → `Other`).
    pub items: Vec<Item>,
    /// Line of the `impl` keyword.
    pub line: u32,
}

/// A module.
#[derive(Debug)]
pub struct ModItem {
    /// The module's name.
    pub name: String,
    /// True if the module carries `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Line the item starts on (its first attribute, matching the
    /// token engine's test-span convention).
    pub start_line: u32,
    /// Line of the closing brace (`start_line` for `mod x;`).
    pub end_line: u32,
    /// Inline items; empty for `mod x;`.
    pub items: Vec<Item>,
}

/// A trait definition.
#[derive(Debug)]
pub struct TraitItem {
    /// The trait's name.
    pub name: String,
    /// Line of the `trait` keyword.
    pub line: u32,
    /// Items inside (default methods carry bodies).
    pub items: Vec<Item>,
}

/// A `use` item, flattened.
#[derive(Debug)]
pub struct UseItem {
    /// Every identifier in the use tree, with its line and whether it
    /// is adjacent to a `::` (`a::b` — both; `{a, b}` members — no).
    /// Path-position rules use the adjacency to match only qualified
    /// mentions, mirroring the token engine.
    pub segs: Vec<UseSeg>,
    /// Line of the `use` keyword.
    pub line: u32,
}

/// One identifier inside a `use` tree.
#[derive(Debug)]
pub struct UseSeg {
    /// The identifier.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// Directly preceded or followed by `::`.
    pub colon_adjacent: bool,
}

/// A `const` or `static` item.
#[derive(Debug)]
pub struct ConstItem {
    /// The item's name.
    pub name: String,
    /// Line of the name.
    pub line: u32,
    /// True for `static`.
    pub is_static: bool,
    /// Declared type.
    pub ty: TypeStr,
    /// The initializer expression, when present.
    pub value: Option<Expr>,
    /// For integer-literal initializers, the literal's text.
    pub int_value: Option<u64>,
}

/// A `{ ... }` block with its statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Line of the opening brace.
    pub open_line: u32,
    /// Line of the closing brace.
    pub close_line: u32,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// A `let` binding.
    Let(LetStmt),
    /// An expression statement.
    Expr(Expr),
    /// A nested item.
    Item(Box<Item>),
}

/// A `let` statement.
#[derive(Debug)]
pub struct LetStmt {
    /// Simple binding name; `None` for tuple/struct patterns.
    pub name: Option<String>,
    /// Declared type annotation, if written.
    pub ty: Option<TypeStr>,
    /// Initializer.
    pub init: Option<Expr>,
    /// `let … else { … }` diverging block.
    pub else_block: Option<Block>,
    /// Line of the `let` keyword.
    pub line: u32,
}

/// A path expression: `a::b::c` (a single identifier is a one-segment
/// path).
#[derive(Debug)]
pub struct PathExpr {
    /// Segments with the line each starts on.
    pub segs: Vec<(String, u32)>,
}

impl PathExpr {
    /// Segment names without lines.
    pub fn names(&self) -> Vec<&str> {
        self.segs.iter().map(|(s, _)| s.as_str()).collect()
    }

    /// The final segment.
    pub fn last(&self) -> &str {
        self.segs.last().map(|(s, _)| s.as_str()).unwrap_or("")
    }

    /// Line of the path's first token.
    pub fn line(&self) -> u32 {
        self.segs.first().map(|&(_, l)| l).unwrap_or(0)
    }
}

/// An expression (skeleton-level).
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` or a bare identifier.
    Path(PathExpr),
    /// Any literal.
    Lit {
        /// The literal's line.
        line: u32,
    },
    /// `callee(args)`.
    Call {
        /// The called expression (usually a path).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Line of the opening paren's callee.
        line: u32,
    },
    /// `recv.method(args)`.
    MethodCall {
        /// The receiver chain.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Line of the method name.
        line: u32,
    },
    /// `recv.field` (tuple indices become `0`, `1`, …).
    Field {
        /// The receiver chain.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// Line of the field name.
        line: u32,
    },
    /// `recv[index]`.
    Index {
        /// The receiver chain.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Line of the receiver.
        line: u32,
    },
    /// A `{ ... }` block expression (also `unsafe`/`async`/labelled).
    Block(Block),
    /// `if cond { } [else ...]` (also `if let`).
    If {
        /// The condition (scrutinee for `if let`).
        cond: Box<Expr>,
        /// The then-block.
        then: Block,
        /// `else` branch: a Block or another If.
        else_: Option<Box<Expr>>,
        /// Line of the `if`.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match(MatchExpr),
    /// `while cond { }` (also `while let`).
    While {
        /// The condition.
        cond: Box<Expr>,
        /// The body.
        body: Block,
        /// Line of the `while`.
        line: u32,
    },
    /// `for pat in iter { }`.
    For {
        /// The iterated expression.
        iter: Box<Expr>,
        /// The body.
        body: Block,
        /// Line of the `for`.
        line: u32,
    },
    /// `loop { }`.
    Loop {
        /// The body.
        body: Block,
        /// Line of the `loop`.
        line: u32,
    },
    /// `|args| body` / `move |args| body`.
    Closure {
        /// The closure body.
        body: Box<Expr>,
        /// Line of the opening `|`.
        line: u32,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// The struct path.
        path: PathExpr,
        /// `(field, value)` pairs (shorthand fields get a Path value).
        fields: Vec<(String, Expr)>,
        /// Line of the path.
        line: u32,
    },
    /// `path!(args)` / `path![args]` / `path! { ... }`; arguments are
    /// parsed leniently so rule-relevant shapes inside macros are seen.
    MacroCall {
        /// The macro path.
        path: PathExpr,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
        /// Line of the macro name.
        line: u32,
    },
    /// `&expr` / `&mut expr`.
    Ref {
        /// The referenced expression.
        inner: Box<Expr>,
        /// Line of the `&`.
        line: u32,
    },
    /// Operator-joined operands, tuples, array elements: children in
    /// source order with the joining operators dropped.
    Seq {
        /// The operand children.
        parts: Vec<Expr>,
        /// Line of the first child.
        line: u32,
    },
    /// Something the skeleton grammar does not model.
    Unknown {
        /// Line of the unmodelled token.
        line: u32,
    },
}

impl Expr {
    /// Anchor line of the expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path(p) => p.line(),
            Expr::Lit { line }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::If { line, .. }
            | Expr::While { line, .. }
            | Expr::For { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Closure { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Ref { line, .. }
            | Expr::Seq { line, .. }
            | Expr::Unknown { line } => *line,
            Expr::Block(b) => b.open_line,
            Expr::Match(m) => m.line,
        }
    }
}

/// A `match` expression.
#[derive(Debug)]
pub struct MatchExpr {
    /// The scrutinee.
    pub scrutinee: Box<Expr>,
    /// The arms in order.
    pub arms: Vec<Arm>,
    /// Line of the `match` keyword.
    pub line: u32,
}

/// One match arm (possibly `|`-alternated).
#[derive(Debug)]
pub struct Arm {
    /// The `|`-separated alternatives.
    pub pats: Vec<PatInfo>,
    /// The arm body.
    pub body: Box<Expr>,
    /// Line of the arm's first pattern token.
    pub line: u32,
}

/// Skeleton info about one pattern alternative.
#[derive(Debug)]
pub struct PatInfo {
    /// Leading path of the pattern (`["Msg", "Request"]` for
    /// `Msg::Request { .. }`), when the pattern starts with one.
    pub path: Vec<String>,
    /// True for `_` or a bare lowercase binding — a pattern that
    /// matches every value.
    pub is_wildcard: bool,
    /// Line of the alternative's first token.
    pub line: u32,
}

// ---------------------------------------------------------------------
// Walkers.
// ---------------------------------------------------------------------

/// Calls `f` on `e` and every sub-expression, pre-order. Blocks nested
/// in expressions are descended via [`walk_block_exprs`].
pub fn walk_exprs<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Path(_) | Expr::Lit { .. } | Expr::Unknown { .. } => {}
        Expr::Call { callee, args, .. } => {
            walk_exprs(callee, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_exprs(recv, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_exprs(recv, f),
        Expr::Index { recv, index, .. } => {
            walk_exprs(recv, f);
            walk_exprs(index, f);
        }
        Expr::Block(b) => walk_block_exprs(b, f),
        Expr::If {
            cond, then, else_, ..
        } => {
            walk_exprs(cond, f);
            walk_block_exprs(then, f);
            if let Some(e) = else_ {
                walk_exprs(e, f);
            }
        }
        Expr::Match(m) => {
            walk_exprs(&m.scrutinee, f);
            for arm in &m.arms {
                walk_exprs(&arm.body, f);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_exprs(cond, f);
            walk_block_exprs(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_exprs(iter, f);
            walk_block_exprs(body, f);
        }
        Expr::Loop { body, .. } => walk_block_exprs(body, f),
        Expr::Closure { body, .. } => walk_exprs(body, f),
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                walk_exprs(v, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::Ref { inner, .. } => walk_exprs(inner, f),
        Expr::Seq { parts, .. } => {
            for p in parts {
                walk_exprs(p, f);
            }
        }
    }
}

/// Calls `f` on every expression in a block (including `let`
/// initializers), pre-order. Nested *items* are not descended — use
/// [`walk_items`] to reach them.
pub fn walk_block_exprs<'a>(b: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    walk_exprs(init, f);
                }
                if let Some(els) = &l.else_block {
                    walk_block_exprs(els, f);
                }
            }
            Stmt::Expr(e) => walk_exprs(e, f),
            Stmt::Item(_) => {}
        }
    }
}

/// Context passed to [`walk_items`] callbacks.
#[derive(Debug, Clone, Default)]
pub struct ItemCtx {
    /// `impl` self-type heads enclosing this item (innermost last).
    pub impl_ty: Option<String>,
    /// True when inside a `#[cfg(test)]` module.
    pub in_test_mod: bool,
}

/// Depth-first walk over every item (including items nested in mods,
/// impls, traits, and function bodies).
pub fn walk_items<'a>(items: &'a [Item], ctx: &ItemCtx, f: &mut impl FnMut(&ItemCtx, &'a Item)) {
    for item in items {
        f(ctx, item);
        match item {
            Item::Fn(fun) => {
                if let Some(body) = &fun.body {
                    walk_block_items(body, ctx, f);
                }
            }
            Item::Impl(imp) => {
                let inner = ItemCtx {
                    impl_ty: Some(imp.self_ty.clone()),
                    ..ctx.clone()
                };
                walk_items(&imp.items, &inner, f);
            }
            Item::Mod(m) => {
                let inner = ItemCtx {
                    in_test_mod: ctx.in_test_mod || m.cfg_test,
                    ..ctx.clone()
                };
                walk_items(&m.items, &inner, f);
            }
            Item::Trait(t) => walk_items(&t.items, ctx, f),
            _ => {}
        }
    }
}

fn walk_block_items<'a>(b: &'a Block, ctx: &ItemCtx, f: &mut impl FnMut(&ItemCtx, &'a Item)) {
    for s in &b.stmts {
        match s {
            Stmt::Item(item) => walk_items(std::slice::from_ref(item.as_ref()), ctx, f),
            Stmt::Expr(e) => walk_expr_items(e, ctx, f),
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    walk_expr_items(init, ctx, f);
                }
                if let Some(els) = &l.else_block {
                    walk_block_items(els, ctx, f);
                }
            }
        }
    }
}

fn walk_expr_items<'a>(e: &'a Expr, ctx: &ItemCtx, f: &mut impl FnMut(&ItemCtx, &'a Item)) {
    walk_exprs(e, &mut |sub| {
        if let Expr::Block(b) = sub {
            for s in &b.stmts {
                if let Stmt::Item(item) = s {
                    walk_items(std::slice::from_ref(item.as_ref()), ctx, f);
                }
            }
        }
    });
}
