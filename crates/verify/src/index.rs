//! Workspace symbol index for the tree-mode semantic passes.
//!
//! Built once per lint run from every parsed file, the index answers
//! the cross-crate questions the per-file rules cannot: which struct
//! fields are `Mutex`/`RwLock`-typed (lock-order), which enum defines
//! the wire protocol and which consts carry its tags (protocol-drift),
//! and which names are `Payload`-typed anywhere in a crate
//! (zero-copy). It deliberately indexes *declarations* only — uses are
//! the passes' job.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{walk_items, Item, ItemCtx, SourceFile, TypeStr};

/// Which lock primitive a declaration wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex` (or loom/parking-lot lookalikes by name).
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
}

impl LockKind {
    fn of(ty: &TypeStr) -> Option<LockKind> {
        // A reference/`Arc`-wrapped lock still counts: `mentions`
        // sees through the token soup.
        if ty.mentions("Mutex") {
            Some(LockKind::Mutex)
        } else if ty.mentions("RwLock") {
            Some(LockKind::RwLock)
        } else {
            None
        }
    }
}

/// A lock-typed declaration site.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Canonical lock id: `Type::field` for struct fields, the bare
    /// name for statics.
    pub id: String,
    /// Which primitive.
    pub kind: LockKind,
    /// Declaring file (workspace-relative).
    pub file: String,
    /// Declaration line.
    pub line: u32,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Declaring file.
    pub file: String,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// Variant names with their lines.
    pub variants: Vec<(String, u32)>,
}

/// An integer const (e.g. a wire tag).
#[derive(Debug, Clone)]
pub struct IntConst {
    /// The const's name.
    pub name: String,
    /// Its value, when the initializer was a single integer literal.
    pub value: Option<u64>,
    /// Declaring file.
    pub file: String,
    /// Declaration line.
    pub line: u32,
}

/// The cross-file symbol index.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Enum name → definition. Last definition wins on duplicates
    /// (fixtures shadowing the live `Msg` never share a run with it).
    pub enums: BTreeMap<String, EnumDef>,
    /// `field name` → lock declarations with that field name (used to
    /// resolve `other.field.lock()` when the receiver's type is
    /// unknown).
    pub lock_fields: BTreeMap<String, Vec<LockDecl>>,
    /// `Type::field` and static-name lock ids, for existence checks.
    pub lock_ids: BTreeMap<String, LockDecl>,
    /// Names (fields, enum-variant fields) declared with a
    /// `Payload`-mentioning type, grouped by crate key (see
    /// `crate::lib`'s `crate_of`); the zero-copy pass unions the
    /// crate-local set with declared params/lets it walks itself.
    pub payload_fields: BTreeMap<String, BTreeSet<String>>,
    /// Integer consts, by name.
    pub int_consts: BTreeMap<String, IntConst>,
}

impl WorkspaceIndex {
    /// Builds the index over `(crate_key, rel_path, tree)` triples.
    pub fn build(files: &[(String, String, &SourceFile)]) -> WorkspaceIndex {
        let mut ix = WorkspaceIndex::default();
        for (crate_key, rel, tree) in files {
            walk_items(&tree.items, &ItemCtx::default(), &mut |ctx, item| {
                if ctx.in_test_mod {
                    return;
                }
                match item {
                    Item::Struct(s) => {
                        for f in &s.fields {
                            if let Some(kind) = LockKind::of(&f.ty) {
                                let decl = LockDecl {
                                    id: format!("{}::{}", s.name, f.name),
                                    kind,
                                    file: rel.clone(),
                                    line: f.line,
                                };
                                ix.lock_ids.insert(decl.id.clone(), decl.clone());
                                ix.lock_fields.entry(f.name.clone()).or_default().push(decl);
                            }
                            if f.ty.mentions("Payload") {
                                ix.payload_fields
                                    .entry(crate_key.clone())
                                    .or_default()
                                    .insert(f.name.clone());
                            }
                        }
                    }
                    Item::Enum(e) => {
                        ix.enums.insert(
                            e.name.clone(),
                            EnumDef {
                                file: rel.clone(),
                                line: e.line,
                                variants: e
                                    .variants
                                    .iter()
                                    .map(|v| (v.name.clone(), v.line))
                                    .collect(),
                            },
                        );
                        for v in &e.variants {
                            for f in &v.fields {
                                if f.ty.mentions("Payload") {
                                    ix.payload_fields
                                        .entry(crate_key.clone())
                                        .or_default()
                                        .insert(f.name.clone());
                                }
                            }
                        }
                    }
                    Item::Const(c) => {
                        if c.is_static {
                            if let Some(kind) = LockKind::of(&c.ty) {
                                let decl = LockDecl {
                                    id: c.name.clone(),
                                    kind,
                                    file: rel.clone(),
                                    line: c.line,
                                };
                                ix.lock_ids.insert(decl.id.clone(), decl);
                            }
                        }
                        ix.int_consts.insert(
                            c.name.clone(),
                            IntConst {
                                name: c.name.clone(),
                                value: c.int_value,
                                file: rel.clone(),
                                line: c.line,
                            },
                        );
                    }
                    _ => {}
                }
            });
        }
        ix
    }

    /// Payload-typed field names for a crate.
    pub fn payload_fields_of(&self, crate_key: &str) -> Option<&BTreeSet<String>> {
        self.payload_fields.get(crate_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn index_of(src: &str) -> WorkspaceIndex {
        let tree = parse(&lex(src));
        assert!(tree.errors.is_empty(), "{:?}", tree.errors);
        let files = vec![(
            "crates/x".to_string(),
            "crates/x/src/lib.rs".to_string(),
            &tree,
        )];
        WorkspaceIndex::build(&files)
    }

    #[test]
    fn locks_enums_consts_payloads() {
        let ix = index_of(
            r#"
            pub struct Hub {
                conns: Mutex<Vec<Conn>>,
                regions: std::sync::RwLock<Map>,
                body: Payload,
            }
            pub enum Msg { Request { body: Payload }, Heartbeat }
            pub const MSG_REQUEST: u8 = 0;
            pub const MSG_HEARTBEAT: u8 = 1;
            static REGISTRY: Mutex<u32> = Mutex::new(0);
            #[cfg(test)]
            mod tests {
                struct Hidden { l: Mutex<u8> }
            }
            "#,
        );
        assert_eq!(ix.lock_ids["Hub::conns"].kind, LockKind::Mutex);
        assert_eq!(ix.lock_ids["Hub::regions"].kind, LockKind::RwLock);
        assert!(ix.lock_ids.contains_key("REGISTRY"));
        assert!(!ix.lock_ids.contains_key("Hidden::l"), "test mods excluded");
        assert_eq!(ix.enums["Msg"].variants.len(), 2);
        assert_eq!(ix.int_consts["MSG_HEARTBEAT"].value, Some(1));
        let pf = ix.payload_fields_of("crates/x").expect("payload fields");
        assert!(pf.contains("body"));
    }
}
