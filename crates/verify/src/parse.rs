//! A hand-rolled, loss-tolerant Rust parser for `ring-lint` v2.
//!
//! Layered on [`crate::lexer`] (the container vendors no `syn`), it
//! produces the skeleton tree of [`crate::ast`]: items, block scopes,
//! `let` bindings, call/method chains, and `match` arms — the shapes
//! the semantic passes reason about. Everything the passes don't need
//! (operator precedence, generics, full patterns) is skipped or
//! flattened into ordered child lists.
//!
//! The parser is built to *never* wedge: every loop consumes at least
//! one token, unmodelled constructs degrade to [`Expr::Unknown`], and
//! only structural damage — an unbalanced delimiter, a file that ends
//! inside a block — is reported in [`SourceFile::errors`]. The
//! workspace golden test asserts zero errors over every `.rs` file in
//! `crates/`, which is the contract the tree-mode rules depend on.

use crate::ast::*;
use crate::lexer::{Lexed, Token, TokenKind};

/// Parses a lexed file into the skeleton tree.
pub fn parse(lexed: &Lexed) -> SourceFile {
    let mut p = P {
        t: &lexed.tokens,
        i: 0,
        errors: Vec::new(),
        // A generous linear budget: any loop that stops consuming
        // exhausts it and surfaces as a ParseError instead of a hang.
        fuel: 64 * lexed.tokens.len() + 4096,
    };
    let items = p.parse_items(false);
    if p.i < p.t.len() {
        // Only unbalanced closers can strand tokens at top level.
        let line = p.t[p.i].line;
        p.err(line, "unbalanced closing delimiter at item level");
    }
    SourceFile {
        items,
        errors: p.errors,
    }
}

/// Item-level keywords the statement parser must hand to
/// [`P::parse_item`].
const ITEM_KEYWORDS: [&str; 12] = [
    "fn",
    "struct",
    "enum",
    "impl",
    "mod",
    "trait",
    "use",
    "type",
    "macro_rules",
    "union",
    "extern",
    "pub",
];

/// Expression-terminator configuration for [`P::parse_expr`].
#[derive(Clone, Copy, Default)]
struct Stops {
    /// Single-char punct terminators (checked at top nesting only —
    /// nested delimiters are consumed whole by the unit parser).
    chars: &'static [char],
    /// Stop before `=>` (match-arm guards).
    arrow: bool,
}

impl Stops {
    const fn of(chars: &'static [char]) -> Self {
        Stops {
            chars,
            arrow: false,
        }
    }
}

struct P<'a> {
    t: &'a [Token],
    i: usize,
    errors: Vec<ParseError>,
    fuel: usize,
}

impl<'a> P<'a> {
    // ---- primitives -------------------------------------------------

    fn err(&mut self, line: u32, msg: &str) {
        if self.errors.len() < 16 {
            self.errors.push(ParseError {
                line,
                msg: msg.to_string(),
            });
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.t.len()
    }

    /// Burns one unit of the linear fuel budget; on exhaustion,
    /// reports an internal error and forces the cursor to EOF so every
    /// loop terminates. A correct parse never comes close to the
    /// budget — this is the backstop for non-progressing loop bugs.
    fn spend_fuel(&mut self) -> bool {
        if self.fuel == 0 {
            let line = self.line();
            self.err(line, "parser fuel exhausted (internal parser bug)");
            self.i = self.t.len();
            return false;
        }
        self.fuel -= 1;
        true
    }

    fn line(&self) -> u32 {
        self.t
            .get(self.i)
            .or_else(|| self.t.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn kind(&self, off: usize) -> Option<&'a TokenKind> {
        self.t.get(self.i + off).map(|t| &t.kind)
    }

    fn ident(&self, off: usize) -> Option<&'a str> {
        match self.kind(off) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, off: usize, c: char) -> bool {
        self.kind(off) == Some(&TokenKind::Punct(c))
    }

    fn literal(&self, off: usize) -> Option<&'a str> {
        match self.kind(off) {
            Some(TokenKind::Literal(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// `::` at `off` (two adjacent colon puncts).
    fn colons(&self, off: usize) -> bool {
        self.punct(off, ':') && self.punct(off + 1, ':')
    }

    /// A `=` that is assignment-like: not part of `==`, `=>`, `<=`,
    /// `>=`, `!=`, `..=`, or a compound-assign operator.
    fn assign_eq(&self, off: usize) -> bool {
        if !self.punct(off, '=') || self.punct(off + 1, '=') || self.punct(off + 1, '>') {
            return false;
        }
        if self.i + off == 0 {
            return true;
        }
        match self.t.get(self.i + off - 1).map(|t| &t.kind) {
            Some(TokenKind::Punct(c)) => !matches!(
                *c,
                '=' | '<' | '>' | '!' | '.' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
            ),
            _ => true,
        }
    }

    /// Skips a balanced `( )`, `[ ]` or `{ }` group; assumes the
    /// current token is the opener. Reports an error on EOF.
    fn skip_balanced(&mut self) {
        let line = self.line();
        let mut depth = 0i32;
        while !self.at_end() {
            match self.kind(0) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
        self.err(line, "unterminated delimiter group");
    }

    /// Skips a `< ... >` generics group; assumes the current token is
    /// `<`. `->` arrows inside (fn-pointer types) are skipped whole.
    fn skip_generics(&mut self) {
        let line = self.line();
        let mut depth = 0i32;
        while !self.at_end() {
            if self.punct(0, '-') && self.punct(1, '>') {
                self.bump();
                self.bump();
                continue;
            }
            match self.kind(0) {
                Some(TokenKind::Punct('<')) => depth += 1,
                Some(TokenKind::Punct('>')) => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                Some(TokenKind::Punct('(' | '[' | '{')) => {
                    self.skip_balanced();
                    continue;
                }
                _ => {}
            }
            self.bump();
        }
        self.err(line, "unterminated generics group");
    }

    /// Consumes attributes (`#[...]` / `#![...]`), returning
    /// `(saw_cfg_test, first_line)`.
    fn eat_attrs(&mut self) -> (bool, Option<u32>) {
        let mut cfg_test = false;
        let mut first_line = None;
        loop {
            let inner = self.punct(0, '#') && self.punct(1, '!') && self.punct(2, '[');
            let outer = self.punct(0, '#') && self.punct(1, '[');
            if !inner && !outer {
                return (cfg_test, first_line);
            }
            first_line.get_or_insert(self.line());
            self.bump(); // '#'
            if inner {
                self.bump(); // '!'
            }
            // Peek `[cfg(test)]` before skipping the group.
            if self.ident(1) == Some("cfg")
                && self.punct(2, '(')
                && self.ident(3) == Some("test")
                && self.punct(4, ')')
            {
                cfg_test = true;
            }
            self.skip_balanced();
        }
    }

    /// Scans a type annotation. Stops (without consuming) at any of
    /// `stops` or the keyword `where`, at zero delimiter/angle nesting.
    fn parse_type(&mut self, stops: &[char]) -> TypeStr {
        let mut toks = Vec::new();
        let mut angle = 0i32;
        let mut nest = 0i32;
        while !self.at_end() {
            if self.punct(0, '-') && self.punct(1, '>') {
                toks.push("-".into());
                toks.push(">".into());
                self.bump();
                self.bump();
                continue;
            }
            match self.kind(0) {
                Some(TokenKind::Punct(c)) => {
                    let c = *c;
                    if nest == 0 && angle == 0 && stops.contains(&c) {
                        break;
                    }
                    match c {
                        '<' => angle += 1,
                        '>' => {
                            if angle == 0 {
                                break;
                            }
                            angle -= 1;
                        }
                        '(' | '[' | '{' => nest += 1,
                        ')' | ']' | '}' => {
                            if nest == 0 {
                                break;
                            }
                            nest -= 1;
                        }
                        _ => {}
                    }
                    toks.push(c.to_string());
                }
                Some(TokenKind::Ident(s)) => {
                    if nest == 0 && angle == 0 && s == "where" {
                        break;
                    }
                    toks.push(s.clone());
                }
                Some(TokenKind::Literal(s)) => toks.push(s.clone()),
                Some(TokenKind::Lifetime) => toks.push("'_".into()),
                None => break,
            }
            self.bump();
        }
        TypeStr { toks }
    }

    /// Skips a `where` clause: everything up to `{` or `;` at zero
    /// nesting (angle-aware).
    fn skip_where(&mut self) {
        let mut angle = 0i32;
        let mut nest = 0i32;
        while !self.at_end() {
            if self.punct(0, '-') && self.punct(1, '>') {
                self.bump();
                self.bump();
                continue;
            }
            match self.kind(0) {
                Some(TokenKind::Punct('<')) => angle += 1,
                Some(TokenKind::Punct('>')) => angle = (angle - 1).max(0),
                Some(TokenKind::Punct('(' | '[')) => nest += 1,
                Some(TokenKind::Punct(')' | ']')) => nest -= 1,
                Some(TokenKind::Punct('{' | ';')) if nest == 0 && angle == 0 => return,
                _ => {}
            }
            self.bump();
        }
    }

    // ---- items ------------------------------------------------------

    /// Parses items until EOF (`inner == false`) or a closing `}`
    /// (`inner == true`, closer not consumed).
    fn parse_items(&mut self, inner: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if !self.spend_fuel() {
                return items;
            }
            if self.at_end() {
                if inner {
                    let line = self.line();
                    self.err(line, "file ended inside a block");
                }
                return items;
            }
            if self.punct(0, '}') {
                if !inner {
                    // Stray closer: report once, consume, continue.
                    let line = self.line();
                    self.err(line, "unbalanced `}` at item level");
                    self.bump();
                    continue;
                }
                return items;
            }
            if self.punct(0, ';') {
                self.bump();
                continue;
            }
            items.push(self.parse_item());
        }
    }

    fn parse_item(&mut self) -> Item {
        let (cfg_test, attr_line) = self.eat_attrs();
        let start_line = attr_line.unwrap_or_else(|| self.line());

        // Visibility.
        let mut is_pub = false;
        if self.ident(0) == Some("pub") {
            is_pub = true;
            self.bump();
            if self.punct(0, '(') {
                self.skip_balanced();
            }
        }

        // Leading modifiers.
        loop {
            match self.ident(0) {
                Some("unsafe" | "async" | "auto" | "default") => self.bump(),
                Some("const") if self.ident(1) == Some("fn") => self.bump(),
                Some("extern") => {
                    if self.literal(1).is_some() && self.ident(2) == Some("fn") {
                        self.bump();
                        self.bump();
                    } else if self.literal(1).is_some() && self.punct(2, '{') {
                        // Foreign block: skip wholesale.
                        self.bump();
                        self.bump();
                        self.skip_balanced();
                        return Item::Other { line: start_line };
                    } else {
                        // `extern crate x;`
                        while !self.at_end() && !self.punct(0, ';') {
                            self.bump();
                        }
                        self.bump();
                        return Item::Other { line: start_line };
                    }
                }
                _ => break,
            }
        }

        match self.ident(0) {
            Some("fn") => Item::Fn(self.parse_fn(is_pub)),
            Some("struct") => self.parse_struct(),
            Some("enum") => self.parse_enum(),
            Some("impl") => self.parse_impl(),
            Some("mod") => self.parse_mod(cfg_test, start_line),
            Some("trait") => self.parse_trait(),
            Some("use") => self.parse_use(),
            Some("const" | "static") => self.parse_const(),
            Some("type") => {
                self.skip_to_semi();
                Item::Other { line: start_line }
            }
            Some("macro_rules") => {
                self.bump();
                if self.punct(0, '!') {
                    self.bump();
                }
                if self.ident(0).is_some() {
                    self.bump();
                }
                if matches!(self.kind(0), Some(TokenKind::Punct('(' | '[' | '{'))) {
                    self.skip_balanced();
                }
                Item::Other { line: start_line }
            }
            Some("union") => {
                self.bump();
                if self.ident(0).is_some() {
                    self.bump();
                }
                if self.punct(0, '<') {
                    self.skip_generics();
                }
                if self.punct(0, '{') {
                    self.skip_balanced();
                }
                Item::Other { line: start_line }
            }
            Some(_) => {
                // Macro invocation item: `path::mac! { ... }` / `(...)`;`.
                if self.try_macro_item() {
                    Item::Other { line: start_line }
                } else {
                    let line = self.line();
                    self.err(line, "unrecognized item");
                    self.bump();
                    Item::Other { line }
                }
            }
            None => {
                let line = self.line();
                self.err(line, "expected an item");
                self.bump();
                Item::Other { line }
            }
        }
    }

    /// Consumes `path::to::mac!(...)`-style item macros; returns false
    /// (consuming nothing) if the shape doesn't match.
    fn try_macro_item(&mut self) -> bool {
        let mut off = 0;
        while self.ident(off).is_some() {
            off += 1;
            if self.punct(off, ':') && self.punct(off + 1, ':') {
                off += 2;
            } else {
                break;
            }
        }
        if off == 0 || !self.punct(off, '!') {
            return false;
        }
        for _ in 0..=off {
            self.bump();
        }
        if self.ident(0).is_some() {
            self.bump(); // `macro_rules!`-style name, just in case
        }
        if matches!(self.kind(0), Some(TokenKind::Punct('(' | '[' | '{'))) {
            let brace = self.punct(0, '{');
            self.skip_balanced();
            if !brace && self.punct(0, ';') {
                self.bump();
            }
        }
        true
    }

    fn skip_to_semi(&mut self) {
        while !self.at_end() {
            match self.kind(0) {
                Some(TokenKind::Punct(';')) => {
                    self.bump();
                    return;
                }
                Some(TokenKind::Punct('(' | '[' | '{')) => self.skip_balanced(),
                _ => self.bump(),
            }
        }
    }

    fn parse_fn(&mut self, is_pub: bool) -> FnItem {
        let line = self.line();
        self.bump(); // fn
        let name = match self.ident(0) {
            Some(n) => {
                self.bump();
                n.to_string()
            }
            None => {
                self.err(line, "fn without a name");
                String::new()
            }
        };
        if self.punct(0, '<') {
            self.skip_generics();
        }
        let mut params = Vec::new();
        if self.punct(0, '(') {
            self.bump();
            while !self.at_end() && !self.punct(0, ')') {
                self.eat_attrs();
                params.push(self.parse_param());
                if self.punct(0, ',') {
                    self.bump();
                }
            }
            self.bump(); // ')'
        } else {
            self.err(line, "fn without a parameter list");
        }
        if self.punct(0, '-') && self.punct(1, '>') {
            self.bump();
            self.bump();
            self.parse_type(&['{', ';']);
        }
        if self.ident(0) == Some("where") {
            self.bump();
            self.skip_where();
        }
        let body = if self.punct(0, '{') {
            Some(self.parse_block())
        } else {
            if self.punct(0, ';') {
                self.bump();
            }
            None
        };
        FnItem {
            name,
            line,
            is_pub,
            params,
            body,
        }
    }

    fn parse_param(&mut self) -> Param {
        // Receivers: `self`, `&self`, `&'a self`, `&mut self`,
        // `mut self`, `self: Type`.
        let mut off = 0;
        if self.punct(off, '&') {
            off += 1;
            if self.kind(off) == Some(&TokenKind::Lifetime) {
                off += 1;
            }
        }
        if self.ident(off) == Some("mut") {
            off += 1;
        }
        if self.ident(off) == Some("self") {
            for _ in 0..=off {
                self.bump();
            }
            let ty = if self.punct(0, ':') {
                self.bump();
                self.parse_type(&[',', ')'])
            } else {
                TypeStr::default()
            };
            return Param {
                name: Some("self".into()),
                ty,
            };
        }
        // Simple `name: Type` / `mut name: Type` / `_: Type`.
        let mut k = 0;
        if self.ident(k) == Some("mut") {
            k += 1;
        }
        let simple = self.ident(k).is_some() && self.punct(k + 1, ':') && !self.punct(k + 2, ':');
        if simple {
            let name = self.ident(k).map(str::to_string);
            for _ in 0..=k + 1 {
                self.bump();
            }
            let ty = self.parse_type(&[',', ')']);
            return Param { name, ty };
        }
        // Complex pattern: skip to the `:` at zero nesting, then type.
        let mut nest = 0i32;
        while !self.at_end() {
            match self.kind(0) {
                Some(TokenKind::Punct('(' | '[' | '{')) => nest += 1,
                Some(TokenKind::Punct(')')) if nest == 0 => {
                    // Type-only param (fn pointers in trait defs).
                    return Param {
                        name: None,
                        ty: TypeStr::default(),
                    };
                }
                Some(TokenKind::Punct(')' | ']' | '}')) => nest -= 1,
                Some(TokenKind::Punct(':')) if nest == 0 && !self.punct(1, ':') => {
                    self.bump();
                    let ty = self.parse_type(&[',', ')']);
                    return Param { name: None, ty };
                }
                Some(TokenKind::Punct(',')) if nest == 0 => {
                    return Param {
                        name: None,
                        ty: TypeStr::default(),
                    };
                }
                _ => {}
            }
            self.bump();
        }
        Param {
            name: None,
            ty: TypeStr::default(),
        }
    }

    fn parse_struct(&mut self) -> Item {
        let line = self.line();
        self.bump(); // struct
        let name = self.take_ident().unwrap_or_default();
        if self.punct(0, '<') {
            self.skip_generics();
        }
        if self.ident(0) == Some("where") {
            self.bump();
            self.skip_where();
        }
        let mut fields = Vec::new();
        if self.punct(0, '(') {
            // Tuple struct.
            self.bump();
            let mut idx = 0usize;
            while !self.at_end() && !self.punct(0, ')') {
                self.eat_attrs();
                if self.ident(0) == Some("pub") {
                    self.bump();
                    if self.punct(0, '(') {
                        self.skip_balanced();
                    }
                }
                let fline = self.line();
                let ty = self.parse_type(&[',', ')']);
                fields.push(Field {
                    name: idx.to_string(),
                    ty,
                    line: fline,
                });
                idx += 1;
                if self.punct(0, ',') {
                    self.bump();
                }
            }
            self.bump(); // ')'
            if self.ident(0) == Some("where") {
                self.bump();
                self.skip_where();
            }
            if self.punct(0, ';') {
                self.bump();
            }
        } else if self.punct(0, '{') {
            self.bump();
            while !self.at_end() && !self.punct(0, '}') {
                self.eat_attrs();
                if self.ident(0) == Some("pub") {
                    self.bump();
                    if self.punct(0, '(') {
                        self.skip_balanced();
                    }
                }
                let fline = self.line();
                let fname = self.take_ident().unwrap_or_default();
                if self.punct(0, ':') {
                    self.bump();
                }
                let ty = self.parse_type(&[',', '}']);
                fields.push(Field {
                    name: fname,
                    ty,
                    line: fline,
                });
                if self.punct(0, ',') {
                    self.bump();
                }
            }
            self.bump(); // '}'
        } else if self.punct(0, ';') {
            self.bump(); // unit struct
        }
        Item::Struct(StructItem { name, line, fields })
    }

    fn parse_enum(&mut self) -> Item {
        let line = self.line();
        self.bump(); // enum
        let name = self.take_ident().unwrap_or_default();
        if self.punct(0, '<') {
            self.skip_generics();
        }
        if self.ident(0) == Some("where") {
            self.bump();
            self.skip_where();
        }
        let mut variants = Vec::new();
        if self.punct(0, '{') {
            self.bump();
            while !self.at_end() && !self.punct(0, '}') {
                self.eat_attrs();
                let vline = self.line();
                let vname = match self.take_ident() {
                    Some(n) => n,
                    None => {
                        self.bump();
                        continue;
                    }
                };
                let mut fields = Vec::new();
                if self.punct(0, '(') {
                    self.bump();
                    let mut idx = 0usize;
                    while !self.at_end() && !self.punct(0, ')') {
                        let before = self.i;
                        let fline = self.line();
                        let ty = self.parse_type(&[',', ')']);
                        fields.push(Field {
                            name: idx.to_string(),
                            ty,
                            line: fline,
                        });
                        idx += 1;
                        if self.punct(0, ',') {
                            self.bump();
                        }
                        if self.i == before {
                            // A token neither the type parser nor the
                            // separators accept (e.g. a stray `}` in
                            // `A(}`): bail out rather than spin.
                            break;
                        }
                    }
                    if self.punct(0, ')') {
                        self.bump();
                    }
                } else if self.punct(0, '{') {
                    self.bump();
                    while !self.at_end() && !self.punct(0, '}') {
                        let before = self.i;
                        self.eat_attrs();
                        let fline = self.line();
                        let fname = self.take_ident().unwrap_or_default();
                        if self.punct(0, ':') {
                            self.bump();
                        }
                        let ty = self.parse_type(&[',', '}']);
                        fields.push(Field {
                            name: fname,
                            ty,
                            line: fline,
                        });
                        if self.punct(0, ',') {
                            self.bump();
                        }
                        if self.i == before {
                            break;
                        }
                    }
                    if self.punct(0, '}') {
                        self.bump();
                    }
                } else if self.assign_eq(0) {
                    // Discriminant.
                    self.bump();
                    self.parse_expr(Stops::of(&[',', '}']), false);
                }
                variants.push(Variant {
                    name: vname,
                    line: vline,
                    fields,
                });
                if self.punct(0, ',') {
                    self.bump();
                }
            }
            self.bump(); // '}'
        }
        Item::Enum(EnumItem {
            name,
            line,
            variants,
        })
    }

    fn parse_impl(&mut self) -> Item {
        let line = self.line();
        self.bump(); // impl
        if self.punct(0, '<') {
            self.skip_generics();
        }
        let first = self.parse_type(&['{']);
        let (trait_name, self_ty) = if self.ident(0) == Some("for") {
            self.bump();
            let second = self.parse_type(&['{']);
            if self.ident(0) == Some("where") {
                self.bump();
                self.skip_where();
            }
            (
                first.head().map(str::to_string),
                second.head().unwrap_or_default().to_string(),
            )
        } else {
            if self.ident(0) == Some("where") {
                self.bump();
                self.skip_where();
            }
            (None, first.head().unwrap_or_default().to_string())
        };
        let mut items = Vec::new();
        if self.punct(0, '{') {
            self.bump();
            items = self.parse_items(true);
            self.bump(); // '}'
        }
        Item::Impl(ImplBlock {
            self_ty,
            trait_name,
            items,
            line,
        })
    }

    fn parse_mod(&mut self, cfg_test: bool, start_line: u32) -> Item {
        self.bump(); // mod
        let name = self.take_ident().unwrap_or_default();
        if self.punct(0, ';') {
            self.bump();
            return Item::Mod(ModItem {
                name,
                cfg_test,
                start_line,
                end_line: start_line,
                items: Vec::new(),
            });
        }
        let mut items = Vec::new();
        let mut end_line = start_line;
        if self.punct(0, '{') {
            self.bump();
            items = self.parse_items(true);
            end_line = self.line();
            self.bump(); // '}'
        }
        Item::Mod(ModItem {
            name,
            cfg_test,
            start_line,
            end_line,
            items,
        })
    }

    fn parse_trait(&mut self) -> Item {
        let line = self.line();
        self.bump(); // trait
        let name = self.take_ident().unwrap_or_default();
        if self.punct(0, '<') {
            self.skip_generics();
        }
        if self.punct(0, ':') {
            // Supertraits: scan to `{` / `where` (angle-aware).
            self.bump();
            self.parse_type(&['{']);
        }
        if self.ident(0) == Some("where") {
            self.bump();
            self.skip_where();
        }
        let mut items = Vec::new();
        if self.punct(0, '{') {
            self.bump();
            items = self.parse_items(true);
            self.bump();
        }
        Item::Trait(TraitItem { name, line, items })
    }

    fn parse_use(&mut self) -> Item {
        let line = self.line();
        self.bump(); // use
        let mut segs = Vec::new();
        let mut prev_colons = false;
        while !self.at_end() && !self.punct(0, ';') {
            if let Some(TokenKind::Ident(s)) = self.kind(0) {
                segs.push(UseSeg {
                    name: s.clone(),
                    line: self.line(),
                    colon_adjacent: prev_colons || self.colons(1),
                });
            }
            prev_colons = self.punct(0, ':');
            self.bump();
        }
        self.bump(); // ';'
        Item::Use(UseItem { segs, line })
    }

    fn parse_const(&mut self) -> Item {
        let is_static = self.ident(0) == Some("static");
        self.bump(); // const / static
        if self.ident(0) == Some("mut") {
            self.bump();
        }
        let line = self.line();
        let name = self.take_ident().unwrap_or_default();
        let ty = if self.punct(0, ':') {
            self.bump();
            self.parse_type(&['=', ';'])
        } else {
            TypeStr::default()
        };
        let mut value = None;
        let mut int_value = None;
        if self.punct(0, '=') {
            self.bump();
            if let Some(text) = self.literal(0) {
                int_value = parse_int_literal(text);
            }
            value = Some(self.parse_expr(Stops::of(&[';']), false));
        }
        if self.punct(0, ';') {
            self.bump();
        }
        Item::Const(ConstItem {
            name,
            line,
            is_static,
            ty,
            value,
            int_value,
        })
    }

    fn take_ident(&mut self) -> Option<String> {
        let s = self.ident(0).map(str::to_string);
        if s.is_some() {
            self.bump();
        }
        s
    }

    // ---- statements -------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let open_line = self.line();
        debug_assert!(self.punct(0, '{'));
        self.bump();
        let mut stmts = Vec::new();
        loop {
            if self.at_end() || !self.spend_fuel() {
                if self.at_end() {
                    self.err(open_line, "file ended inside a block");
                }
                return Block {
                    stmts,
                    open_line,
                    close_line: self.line(),
                };
            }
            if self.punct(0, '}') {
                let close_line = self.line();
                self.bump();
                return Block {
                    stmts,
                    open_line,
                    close_line,
                };
            }
            if self.punct(0, ';') {
                self.bump();
                continue;
            }
            // Attributes may precede items, lets, and expressions
            // alike; the cfg(test) flag only matters for items.
            let before = self.i;
            let (cfg_test, attr_line) = self.eat_attrs();
            if self.ident(0) == Some("let") {
                stmts.push(Stmt::Let(self.parse_let()));
            } else if self.is_item_start() {
                // Rewind over the attrs so parse_item sees them.
                let _ = (cfg_test, attr_line);
                self.i = before;
                stmts.push(Stmt::Item(Box::new(self.parse_item())));
            } else if self.punct(0, '{')
                || matches!(
                    self.ident(0),
                    Some("if" | "match" | "loop" | "while" | "for" | "unsafe")
                )
            {
                // Block-like expressions end the statement without a
                // semicolon; parse a single unit, not a greedy expr.
                let e = self.parse_unit(Stops::of(&[';', '}']), false);
                if self.punct(0, ';') {
                    self.bump();
                }
                stmts.push(Stmt::Expr(e));
            } else {
                let e = self.parse_expr(Stops::of(&[';', '}']), false);
                if self.punct(0, ';') {
                    self.bump();
                }
                stmts.push(Stmt::Expr(e));
            }
        }
    }

    /// Is the current token the start of a nested item? (`const` is an
    /// item only in `const NAME:`/`const fn` position — `const { … }`
    /// is an inline-const expression.)
    fn is_item_start(&self) -> bool {
        match self.ident(0) {
            Some("const") => self.ident(1) == Some("fn") || self.punct(2, ':'),
            Some("static") => true,
            Some("unsafe") => matches!(self.ident(1), Some("fn" | "impl" | "trait" | "extern")),
            Some("async") => self.ident(1) == Some("fn"),
            Some(kw) => ITEM_KEYWORDS.contains(&kw),
            None => false,
        }
    }

    fn parse_let(&mut self) -> LetStmt {
        let line = self.line();
        self.bump(); // let
        if self.ident(0) == Some("mut") {
            self.bump();
        }
        // Simple binding?
        let name = if self.ident(0).is_some()
            && ((self.punct(1, ':') && !self.punct(2, ':'))
                || self.assign_eq(1)
                || self.punct(1, ';')
                || self.ident(1) == Some("else"))
        {
            self.take_ident()
        } else {
            // Complex pattern: skip to `:`, `=`, or `;` at zero nesting.
            let mut nest = 0i32;
            while !self.at_end() {
                match self.kind(0) {
                    Some(TokenKind::Punct('(' | '[' | '{')) => nest += 1,
                    Some(TokenKind::Punct(')' | ']' | '}')) => nest -= 1,
                    Some(TokenKind::Punct(':')) if nest == 0 && !self.punct(1, ':') => break,
                    Some(TokenKind::Punct(';')) if nest == 0 => break,
                    Some(TokenKind::Punct('=')) if nest == 0 && self.assign_eq(0) => break,
                    _ => {}
                }
                if self.colons(0) {
                    self.bump();
                }
                self.bump();
            }
            None
        };
        let ty = if self.punct(0, ':') && !self.punct(1, ':') {
            self.bump();
            Some(self.parse_type(&['=', ';']))
        } else {
            None
        };
        let init = if self.assign_eq(0) {
            self.bump();
            Some(self.parse_expr(Stops::of(&[';']), false))
        } else {
            None
        };
        let else_block = if self.ident(0) == Some("else") && self.punct(1, '{') {
            self.bump();
            Some(self.parse_block())
        } else {
            None
        };
        if self.punct(0, ';') {
            self.bump();
        }
        LetStmt {
            name,
            ty,
            init,
            else_block,
            line,
        }
    }

    // ---- expressions ------------------------------------------------

    /// Parses an operator-joined expression until a stop token at top
    /// nesting. Operands become children; operators are dropped.
    fn parse_expr(&mut self, stops: Stops, no_struct: bool) -> Expr {
        let first_line = self.line();
        let mut parts: Vec<Expr> = Vec::new();
        let mut prev_operand = false;
        loop {
            if self.at_end() || !self.spend_fuel() {
                break;
            }
            if stops.arrow && self.punct(0, '=') && self.punct(1, '>') {
                break;
            }
            match self.kind(0) {
                Some(TokenKind::Punct(c)) if stops.chars.contains(c) => break,
                // Closers always end the expression: the caller owns them.
                Some(TokenKind::Punct(')' | ']' | '}')) => break,
                _ => {}
            }
            if self.ident(0) == Some("else") {
                break; // let-else; `if` consumes its own `else`.
            }
            if self.ident(0) == Some("as") {
                self.bump();
                self.skip_cast_type();
                prev_operand = true;
                continue;
            }
            if let Some(kw) = self.ident(0) {
                if matches!(
                    kw,
                    "return" | "break" | "continue" | "yield" | "await" | "in"
                ) {
                    self.bump();
                    if self.kind(0) == Some(&TokenKind::Lifetime) {
                        self.bump(); // break 'label
                    }
                    prev_operand = false;
                    continue;
                }
            }
            if self.kind(0) == Some(&TokenKind::Lifetime) {
                // Label (`'a: loop`) or labelled-break target.
                self.bump();
                if self.punct(0, ':') {
                    self.bump();
                }
                prev_operand = false;
                continue;
            }
            if self.punct(0, '|') && prev_operand {
                // Binary or (consume `||` whole so the second pipe is
                // not mistaken for a closure opener).
                self.bump();
                if self.punct(0, '|') {
                    self.bump();
                }
                prev_operand = false;
                continue;
            }
            if self.is_unit_start() {
                parts.push(self.parse_unit(stops, no_struct));
                prev_operand = true;
                continue;
            }
            // Operator / separator: drop it.
            self.bump();
            prev_operand = false;
        }
        match parts.len() {
            0 => Expr::Unknown { line: first_line },
            1 => parts.pop().expect("len checked"),
            _ => Expr::Seq {
                parts,
                line: first_line,
            },
        }
    }

    fn is_unit_start(&self) -> bool {
        match self.kind(0) {
            Some(TokenKind::Ident(_)) | Some(TokenKind::Literal(_)) => true,
            Some(TokenKind::Punct(c)) => {
                matches!(*c, '&' | '*' | '-' | '!' | '(' | '[' | '{' | '|' | '#')
            }
            _ => false,
        }
    }

    /// Parses one operand unit (primary + postfix chain).
    fn parse_unit(&mut self, stops: Stops, no_struct: bool) -> Expr {
        let line = self.line();
        // Prefix operators.
        if self.punct(0, '&') {
            self.bump();
            if self.ident(0) == Some("mut") {
                self.bump();
            }
            if self.kind(0) == Some(&TokenKind::Lifetime) {
                self.bump();
            }
            if !self.is_unit_start() {
                return Expr::Unknown { line };
            }
            let inner = self.parse_unit(stops, no_struct);
            return Expr::Ref {
                inner: Box::new(inner),
                line,
            };
        }
        if self.punct(0, '*') || self.punct(0, '-') || self.punct(0, '!') {
            self.bump();
            if !self.is_unit_start() {
                return Expr::Unknown { line };
            }
            return self.parse_unit(stops, no_struct);
        }
        if self.punct(0, '#') {
            self.eat_attrs();
            if !self.is_unit_start() {
                return Expr::Unknown { line };
            }
            return self.parse_unit(stops, no_struct);
        }
        if self.punct(0, '|') {
            return self.parse_closure(stops, line);
        }

        let primary = match self.kind(0) {
            Some(TokenKind::Literal(_)) => {
                self.bump();
                Expr::Lit { line }
            }
            Some(TokenKind::Punct('(')) => {
                self.bump();
                let inner = self.parse_expr_list(')', &[',', ';']);
                match inner.len() {
                    1 => inner.into_iter().next().expect("len checked"),
                    _ => Expr::Seq { parts: inner, line },
                }
            }
            Some(TokenKind::Punct('[')) => {
                self.bump();
                let inner = self.parse_expr_list(']', &[',', ';']);
                Expr::Seq { parts: inner, line }
            }
            Some(TokenKind::Punct('{')) => Expr::Block(self.parse_block()),
            Some(TokenKind::Ident(_)) => self.parse_keyword_or_path(stops, no_struct),
            _ => {
                self.bump();
                Expr::Unknown { line }
            }
        };
        self.parse_postfix(primary, no_struct)
    }

    fn parse_closure(&mut self, stops: Stops, line: u32) -> Expr {
        self.bump(); // '|'
                     // Parameters up to the closing '|' at zero nesting.
        let mut nest = 0i32;
        while !self.at_end() {
            match self.kind(0) {
                Some(TokenKind::Punct('(' | '[' | '{')) => nest += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => nest -= 1,
                Some(TokenKind::Punct('|')) if nest == 0 => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            self.bump();
        }
        if self.punct(0, '-') && self.punct(1, '>') {
            self.bump();
            self.bump();
            self.parse_type(&['{']);
        }
        let body = if self.punct(0, '{') {
            Expr::Block(self.parse_block())
        } else {
            self.parse_expr(stops, false)
        };
        Expr::Closure {
            body: Box::new(body),
            line,
        }
    }

    fn parse_keyword_or_path(&mut self, stops: Stops, no_struct: bool) -> Expr {
        let line = self.line();
        match self.ident(0) {
            Some("if") => return self.parse_if(),
            Some("while") => {
                self.bump();
                self.skip_let_pattern_if_present();
                let cond = self.parse_expr(Stops::of(&['{']), true);
                let body = self.expect_block();
                return Expr::While {
                    cond: Box::new(cond),
                    body,
                    line,
                };
            }
            Some("for") => {
                self.bump();
                // Pattern up to `in` at zero nesting.
                let mut nest = 0i32;
                while !self.at_end() {
                    match self.kind(0) {
                        Some(TokenKind::Punct('(' | '[' | '{')) => nest += 1,
                        Some(TokenKind::Punct(')' | ']' | '}')) => nest -= 1,
                        Some(TokenKind::Ident(s)) if s == "in" && nest == 0 => break,
                        _ => {}
                    }
                    self.bump();
                }
                if self.ident(0) == Some("in") {
                    self.bump();
                }
                let iter = self.parse_expr(Stops::of(&['{']), true);
                let body = self.expect_block();
                return Expr::For {
                    iter: Box::new(iter),
                    body,
                    line,
                };
            }
            Some("loop") => {
                self.bump();
                let body = self.expect_block();
                return Expr::Loop { body, line };
            }
            Some("match") => return self.parse_match(),
            Some("unsafe" | "async") => {
                self.bump();
                if self.ident(0) == Some("move") {
                    self.bump();
                }
                if self.punct(0, '{') {
                    return Expr::Block(self.parse_block());
                }
                if self.punct(0, '|') {
                    return self.parse_closure(stops, line);
                }
                return Expr::Unknown { line };
            }
            Some("const") if self.punct(1, '{') => {
                self.bump();
                return Expr::Block(self.parse_block());
            }
            Some("move") => {
                self.bump();
                if self.punct(0, '|') {
                    return self.parse_closure(stops, line);
                }
                return Expr::Unknown { line };
            }
            _ => {}
        }
        // Path: `a::b::c`, with optional turbofish segments.
        let mut segs = Vec::new();
        while let Some(TokenKind::Ident(s)) = self.kind(0) {
            segs.push((s.clone(), self.line()));
            self.bump();
            if self.colons(0) {
                if self.punct(2, '<') {
                    self.bump();
                    self.bump();
                    self.skip_generics();
                    if self.colons(0) {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                if self.ident(2).is_some() {
                    self.bump();
                    self.bump();
                    continue;
                }
            }
            break;
        }
        let path = PathExpr { segs };
        // Macro call?
        if self.punct(0, '!') && matches!(self.kind(1), Some(TokenKind::Punct('(' | '[' | '{'))) {
            self.bump(); // '!'
            let close = match self.kind(0) {
                Some(TokenKind::Punct('(')) => ')',
                Some(TokenKind::Punct('[')) => ']',
                _ => '}',
            };
            self.bump();
            let args = self.parse_expr_list(close, &[',', ';']);
            return Expr::MacroCall { path, args, line };
        }
        // Struct literal?
        if self.punct(0, '{') && !no_struct && self.looks_like_struct_lit() {
            self.bump(); // '{'
            let mut fields = Vec::new();
            while !self.at_end() && !self.punct(0, '}') {
                if self.punct(0, '.') && self.punct(1, '.') {
                    // `..base`
                    self.bump();
                    self.bump();
                    let base = self.parse_expr(Stops::of(&[',', '}']), false);
                    fields.push(("..".to_string(), base));
                } else if self.ident(0).is_some() && self.punct(1, ':') && !self.punct(2, ':') {
                    let fname = self.take_ident().unwrap_or_default();
                    self.bump(); // ':'
                    let v = self.parse_expr(Stops::of(&[',', '}']), false);
                    fields.push((fname, v));
                } else if let Some(TokenKind::Ident(s)) = self.kind(0) {
                    // Shorthand.
                    let fline = self.line();
                    let fname = s.clone();
                    self.bump();
                    fields.push((
                        fname.clone(),
                        Expr::Path(PathExpr {
                            segs: vec![(fname, fline)],
                        }),
                    ));
                } else {
                    self.bump();
                }
                if self.punct(0, ',') {
                    self.bump();
                }
            }
            self.bump(); // '}'
            return Expr::StructLit { path, fields, line };
        }
        Expr::Path(path)
    }

    /// After a path followed by `{`: does this look like a struct
    /// literal body rather than a block?
    fn looks_like_struct_lit(&self) -> bool {
        if !self.punct(0, '{') {
            return false;
        }
        if self.punct(1, '}') {
            return true; // `Path {}`
        }
        if self.punct(1, '.') && self.punct(2, '.') {
            return true; // `Path { ..base }`
        }
        if self.ident(1).is_some() {
            return (self.punct(2, ':') && !self.punct(3, ':'))
                || self.punct(2, ',')
                || self.punct(2, '}');
        }
        false
    }

    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // if
        self.skip_let_pattern_if_present();
        let cond = self.parse_expr(Stops::of(&['{']), true);
        if !self.punct(0, '{') {
            // `pat if guard` inside a macro such as `matches!`: there
            // is no block. Keep the parsed guard, consume nothing more.
            return Expr::If {
                cond: Box::new(cond),
                then: Block {
                    stmts: Vec::new(),
                    open_line: line,
                    close_line: line,
                },
                else_: None,
                line,
            };
        }
        let then = self.expect_block();
        let else_ = if self.ident(0) == Some("else") {
            self.bump();
            if self.ident(0) == Some("if") {
                Some(Box::new(self.parse_if()))
            } else if self.punct(0, '{') {
                Some(Box::new(Expr::Block(self.parse_block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            else_,
            line,
        }
    }

    /// For `if let` / `while let`: consumes `let <pattern> =` so the
    /// remainder parses as the scrutinee expression.
    fn skip_let_pattern_if_present(&mut self) {
        if self.ident(0) != Some("let") {
            return;
        }
        self.bump();
        let mut nest = 0i32;
        while !self.at_end() {
            match self.kind(0) {
                Some(TokenKind::Punct('(' | '[' | '{')) => nest += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => nest -= 1,
                Some(TokenKind::Punct('=')) if nest == 0 && self.assign_eq(0) => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn expect_block(&mut self) -> Block {
        if self.punct(0, '{') {
            self.parse_block()
        } else {
            let line = self.line();
            self.err(line, "expected a block");
            Block {
                stmts: Vec::new(),
                open_line: line,
                close_line: line,
            }
        }
    }

    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // match
        let scrutinee = self.parse_expr(Stops::of(&['{']), true);
        let mut arms = Vec::new();
        if self.punct(0, '{') {
            self.bump();
            loop {
                if self.at_end() || !self.spend_fuel() {
                    if self.at_end() {
                        self.err(line, "file ended inside a match");
                    }
                    break;
                }
                if self.punct(0, '}') {
                    self.bump();
                    break;
                }
                self.eat_attrs();
                if self.punct(0, '}') {
                    self.bump();
                    break;
                }
                let arm_line = self.line();
                let pats = self.parse_arm_pats();
                if self.punct(0, '=') && self.punct(1, '>') {
                    self.bump();
                    self.bump();
                }
                let body = self.parse_arm_body();
                if self.punct(0, ',') {
                    self.bump();
                }
                arms.push(Arm {
                    pats,
                    body: Box::new(body),
                    line: arm_line,
                });
            }
        }
        Expr::Match(MatchExpr {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        })
    }

    /// Parses one arm's pattern alternatives, up to (not including) the
    /// `=>`. An `if` guard is parsed and discarded.
    fn parse_arm_pats(&mut self) -> Vec<PatInfo> {
        let mut alts = Vec::new();
        let mut cur: Vec<&'a TokenKind> = Vec::new();
        let mut cur_line = self.line();
        let mut nest = 0i32;
        loop {
            if self.at_end() || !self.spend_fuel() {
                break;
            }
            if nest == 0 && self.punct(0, '=') && self.punct(1, '>') {
                break;
            }
            if nest == 0 && self.ident(0) == Some("if") {
                // Guard: parse and discard, then stop at `=>`.
                self.bump();
                self.parse_expr(
                    Stops {
                        chars: &[],
                        arrow: true,
                    },
                    true,
                );
                break;
            }
            if nest == 0 && self.punct(0, '|') {
                alts.push(pat_info(&cur, cur_line));
                cur.clear();
                self.bump();
                cur_line = self.line();
                continue;
            }
            match self.kind(0) {
                Some(TokenKind::Punct('(' | '[' | '{')) => nest += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => {
                    if nest == 0 {
                        break; // stray closer: the match owns it
                    }
                    nest -= 1;
                }
                _ => {}
            }
            if cur.is_empty() {
                cur_line = self.line();
            }
            if let Some(k) = self.kind(0) {
                cur.push(k);
            }
            self.bump();
        }
        alts.push(pat_info(&cur, cur_line));
        alts
    }

    /// Parses a match-arm body. Block-shaped bodies (block, if, match,
    /// loop forms) are single units — Rust lets them omit the trailing
    /// comma, so the next tokens belong to the next arm.
    fn parse_arm_body(&mut self) -> Expr {
        if self.punct(0, '{') {
            return Expr::Block(self.parse_block());
        }
        if matches!(
            self.ident(0),
            Some("if" | "match" | "loop" | "while" | "for" | "unsafe")
        ) {
            return self.parse_unit(Stops::of(&[',', ';']), false);
        }
        self.parse_expr(Stops::of(&[',']), false)
    }

    /// Parses a `)`-, `]`- or `}`-terminated, separator-split list of
    /// expressions; consumes the closer.
    fn parse_expr_list(&mut self, close: char, seps: &'static [char]) -> Vec<Expr> {
        let stops: Stops = match (close, seps) {
            (')', _) => Stops::of(&[',', ';', ')']),
            (']', _) => Stops::of(&[',', ';', ']']),
            _ => Stops::of(&[',', ';', '}']),
        };
        let open_line = self.line();
        let mut out = Vec::new();
        loop {
            if self.at_end() || !self.spend_fuel() {
                if self.at_end() {
                    self.err(open_line, "unterminated delimiter group");
                }
                return out;
            }
            if self.punct(0, close) {
                self.bump();
                return out;
            }
            if let Some(TokenKind::Punct(c)) = self.kind(0) {
                if seps.contains(c) {
                    self.bump();
                    continue;
                }
            }
            let e = self.parse_expr(stops, false);
            if matches!(e, Expr::Unknown { .. }) && !self.at_end() && !self.punct(0, close) {
                // parse_expr stopped without consuming (stop token it
                // doesn't own): consume one token to guarantee progress.
                if let Some(TokenKind::Punct(c)) = self.kind(0) {
                    if !seps.contains(c) {
                        self.bump();
                    }
                } else {
                    self.bump();
                }
            }
            out.push(e);
        }
    }

    /// Postfix chain: `.method(…)`, `.field`, `.0`, `.await`, `?`,
    /// `(…)` calls, `[…]` indexing.
    fn parse_postfix(&mut self, mut e: Expr, no_struct: bool) -> Expr {
        let _ = no_struct;
        loop {
            if !self.spend_fuel() {
                return e;
            }
            if self.punct(0, '.') && !self.punct(1, '.') {
                if self.ident(1) == Some("await") {
                    self.bump();
                    self.bump();
                    continue;
                }
                if let Some(name) = self.ident(1) {
                    let mline = self.t[self.i + 1].line;
                    // Turbofish: `.collect::<T>()`.
                    let mut ahead = 2;
                    let mut had_fish = false;
                    if self.punct(ahead, ':')
                        && self.punct(ahead + 1, ':')
                        && self.punct(ahead + 2, '<')
                    {
                        had_fish = true;
                    }
                    if had_fish {
                        self.bump(); // '.'
                        self.bump(); // name
                        self.bump(); // ':'
                        self.bump(); // ':'
                        self.skip_generics();
                        ahead = 0;
                    } else {
                        self.bump();
                        self.bump();
                        ahead = 0;
                    }
                    if self.punct(ahead, '(') {
                        self.bump();
                        let args = self.parse_expr_list(')', &[',']);
                        e = Expr::MethodCall {
                            recv: Box::new(e),
                            method: name.to_string(),
                            args,
                            line: mline,
                        };
                    } else {
                        e = Expr::Field {
                            recv: Box::new(e),
                            name: name.to_string(),
                            line: mline,
                        };
                    }
                    continue;
                }
                if let Some(lit) = self.literal(1) {
                    let mline = self.t[self.i + 1].line;
                    let name = lit.to_string();
                    self.bump();
                    self.bump();
                    e = Expr::Field {
                        recv: Box::new(e),
                        name,
                        line: mline,
                    };
                    continue;
                }
                // `.` followed by something else: drop the dot.
                self.bump();
                continue;
            }
            if self.punct(0, '?') {
                self.bump();
                continue;
            }
            if self.punct(0, '(') {
                let line = e.line();
                self.bump();
                let args = self.parse_expr_list(')', &[',']);
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
                continue;
            }
            if self.punct(0, '[') {
                let line = e.line();
                self.bump();
                let inner = self.parse_expr_list(']', &[',', ';']);
                e = Expr::Index {
                    recv: Box::new(e),
                    index: Box::new(match inner.len() {
                        1 => inner.into_iter().next().expect("len checked"),
                        _ => Expr::Seq { parts: inner, line },
                    }),
                    line,
                };
                continue;
            }
            return e;
        }
    }

    /// Skips the type after `as`.
    fn skip_cast_type(&mut self) {
        loop {
            match self.kind(0) {
                Some(TokenKind::Punct('&' | '*')) => self.bump(),
                Some(TokenKind::Ident(s)) if s == "mut" || s == "const" || s == "dyn" => {
                    self.bump()
                }
                _ => break,
            }
        }
        // Path with generics, or a parenthesized/fn-pointer type.
        if self.punct(0, '(') {
            self.skip_balanced();
            return;
        }
        while self.ident(0).is_some() {
            self.bump();
            if self.punct(0, '<') {
                self.skip_generics();
            }
            if self.colons(0) {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
    }
}

/// Classifies one pattern alternative's token slice.
fn pat_info(toks: &[&TokenKind], line: u32) -> PatInfo {
    // Strip leading binding modifiers and references.
    let mut i = 0;
    while i < toks.len() {
        match toks[i] {
            TokenKind::Ident(s) if s == "ref" || s == "mut" || s == "box" => i += 1,
            TokenKind::Punct('&') => i += 1,
            _ => break,
        }
    }
    // Leading path.
    let mut path = Vec::new();
    let mut j = i;
    while j < toks.len() {
        if let TokenKind::Ident(s) = toks[j] {
            path.push(s.clone());
            if j + 2 < toks.len()
                && toks[j + 1] == &TokenKind::Punct(':')
                && toks[j + 2] == &TokenKind::Punct(':')
            {
                j += 3;
                continue;
            }
        }
        break;
    }
    // `name @ subpattern` is constrained by the subpattern.
    let has_at = toks.iter().any(|t| t == &&TokenKind::Punct('@'));
    let is_wildcard = !has_at
        && ((toks.len() == i + 1
            && matches!(toks.get(i), Some(TokenKind::Ident(s))
                if *s == "_" || s.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')))
            || toks.is_empty());
    PatInfo {
        path,
        is_wildcard,
        line,
    }
}

/// Parses an integer literal's value (decimal/hex/octal/binary,
/// underscores and type suffixes tolerated).
pub fn parse_int_literal(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix (`u8`, `usize`, …).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> SourceFile {
        parse(&lex(src))
    }

    fn assert_clean(src: &str) -> SourceFile {
        let f = parse_src(src);
        assert!(f.errors.is_empty(), "parse errors: {:?}", f.errors);
        f
    }

    #[test]
    fn items_structs_enums_fns() {
        let f = assert_clean(
            r#"
            pub struct Foo { pub a: u32, b: Vec<Option<Payload>> }
            struct Tup(u8, String);
            enum Msg { A, B { x: u32 }, C(Payload) }
            impl Foo {
                pub fn new(n: u32) -> Self { Foo { a: n, b: Vec::new() } }
            }
            fn free(x: &mut [u8]) {}
            "#,
        );
        assert_eq!(f.items.len(), 5);
        let Item::Struct(s) = &f.items[0] else {
            panic!("expected struct")
        };
        assert_eq!(s.name, "Foo");
        assert_eq!(s.fields.len(), 2);
        assert!(s.fields[1].ty.mentions("Payload"));
        let Item::Enum(e) = &f.items[2] else {
            panic!("expected enum")
        };
        assert_eq!(e.name, "Msg");
        assert_eq!(
            e.variants
                .iter()
                .map(|v| v.name.as_str())
                .collect::<Vec<_>>(),
            vec!["A", "B", "C"]
        );
        let Item::Impl(imp) = &f.items[3] else {
            panic!("expected impl")
        };
        assert_eq!(imp.self_ty, "Foo");
        assert_eq!(imp.items.len(), 1);
    }

    #[test]
    fn match_arms_and_patterns() {
        let f = assert_clean(
            r#"
            fn dispatch(m: Msg) {
                match m {
                    Msg::A => {}
                    Msg::B { x } if x > 0 => handle(x),
                    Msg::C(p) | Msg::D(p) => use_it(p),
                    _ => {}
                }
            }
            "#,
        );
        let Item::Fn(fun) = &f.items[0] else {
            panic!("expected fn")
        };
        let body = fun.body.as_ref().expect("body");
        let Stmt::Expr(Expr::Match(m)) = &body.stmts[0] else {
            panic!("expected match, got {:?}", body.stmts[0])
        };
        assert_eq!(m.arms.len(), 4);
        assert_eq!(m.arms[0].pats[0].path, vec!["Msg", "A"]);
        assert_eq!(m.arms[1].pats[0].path, vec!["Msg", "B"]);
        assert_eq!(m.arms[2].pats.len(), 2);
        assert_eq!(m.arms[2].pats[1].path, vec!["Msg", "D"]);
        assert!(m.arms[3].pats[0].is_wildcard);
        assert!(!m.arms[0].pats[0].is_wildcard);
    }

    #[test]
    fn method_chains_and_calls() {
        let f = assert_clean("fn f() { self.conns.lock().unwrap().send(1, x); }");
        let Item::Fn(fun) = &f.items[0] else { panic!() };
        let Stmt::Expr(e) = &fun.body.as_ref().expect("body").stmts[0] else {
            panic!()
        };
        let Expr::MethodCall { method, recv, .. } = e else {
            panic!("expected method call, got {e:?}")
        };
        assert_eq!(method, "send");
        let Expr::MethodCall { method: m2, .. } = recv.as_ref() else {
            panic!()
        };
        assert_eq!(m2, "unwrap");
    }

    #[test]
    fn let_bindings_and_liveness_shapes() {
        let f = assert_clean(
            r#"
            fn f(m: &Mutex<u32>) {
                let g = m.lock().unwrap();
                let moved = g;
                drop(moved);
                let (a, b) = pair();
                let x: Vec<u8> = Vec::new();
            }
            "#,
        );
        let Item::Fn(fun) = &f.items[0] else { panic!() };
        let stmts = &fun.body.as_ref().expect("body").stmts;
        let Stmt::Let(l0) = &stmts[0] else { panic!() };
        assert_eq!(l0.name.as_deref(), Some("g"));
        let Stmt::Let(l1) = &stmts[1] else { panic!() };
        assert_eq!(l1.name.as_deref(), Some("moved"));
        assert!(matches!(l1.init, Some(Expr::Path(_))));
        let Stmt::Let(l3) = &stmts[3] else { panic!() };
        assert!(l3.name.is_none(), "tuple pattern has no simple name");
        let Stmt::Let(l4) = &stmts[4] else { panic!() };
        assert!(l4.ty.as_ref().expect("ty").mentions("Vec"));
    }

    #[test]
    fn struct_literal_vs_match_block() {
        let f = assert_clean(
            r#"
            fn f() -> Foo {
                match x { _ => {} }
                if cond { return Foo { a: 1 }; }
                Foo { a: 2 }
            }
            "#,
        );
        let Item::Fn(fun) = &f.items[0] else { panic!() };
        let stmts = &fun.body.as_ref().expect("body").stmts;
        assert!(matches!(&stmts[0], Stmt::Expr(Expr::Match(_))));
        assert!(matches!(&stmts[1], Stmt::Expr(Expr::If { .. })));
        assert!(matches!(&stmts[2], Stmt::Expr(Expr::StructLit { .. })));
    }

    #[test]
    fn closures_generics_macros_loops() {
        assert_clean(
            r#"
            fn f<T: Into<Vec<u8>>>(xs: &[T]) -> Vec<u8> {
                let v: Vec<u8> = xs.iter().map(|x| x.len() + 1).collect::<Vec<_>>();
                let total = xs.iter().fold(0u64, |acc, x| acc + go(x));
                for (i, x) in v.iter().enumerate() {
                    println!("{} {}", i, x);
                }
                'outer: loop {
                    while let Some(y) = it.next() {
                        if y == 0 { break 'outer; }
                    }
                }
                assert_eq!(v.len(), xs.len());
                v
            }
            "#,
        );
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let f = assert_clean(
            r#"
            fn live() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let now = Instant::now(); }
            }
            "#,
        );
        let Item::Mod(m) = &f.items[1] else {
            panic!("expected mod")
        };
        assert!(m.cfg_test);
        assert_eq!(m.start_line, 3);
        assert_eq!(m.end_line, 7);
    }

    #[test]
    fn unbalanced_braces_is_a_parse_error() {
        let f = parse_src("fn f() { if x { }\n");
        assert!(!f.errors.is_empty());
        let f = parse_src("fn f() { } }");
        assert!(!f.errors.is_empty());
    }

    #[test]
    fn int_literals() {
        assert_eq!(parse_int_literal("0"), Some(0));
        assert_eq!(parse_int_literal("22"), Some(22));
        assert_eq!(parse_int_literal("0x52494E47"), Some(0x52494E47));
        assert_eq!(parse_int_literal("64u8"), Some(64));
        assert_eq!(parse_int_literal("1_000"), Some(1000));
        assert_eq!(parse_int_literal("abc"), None);
    }

    #[test]
    fn let_else_and_if_let() {
        assert_clean(
            r#"
            fn f(o: Option<u32>) -> u32 {
                let Some(x) = o else { return 0; };
                if let Some(y) = other() {
                    return y;
                }
                x
            }
            "#,
        );
    }

    #[test]
    fn use_items_keep_segments() {
        let f = assert_clean("use std::sync::{Arc, Mutex};\nuse rand::thread_rng;\n");
        let Item::Use(u) = &f.items[1] else { panic!() };
        assert!(u
            .segs
            .iter()
            .any(|s| s.name == "thread_rng" && s.line == 2 && s.colon_adjacent));
        let Item::Use(braced) = &f.items[0] else {
            panic!()
        };
        let arc = braced
            .segs
            .iter()
            .find(|s| s.name == "Arc")
            .expect("Arc seg");
        assert!(!arc.colon_adjacent, "brace members are not ::-qualified");
    }
}
