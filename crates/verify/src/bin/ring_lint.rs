//! `ring-lint` — workspace linter for Ring protocol invariants.
//!
//! Usage:
//!
//! ```text
//! ring-lint --workspace [--token] [--json] [--root PATH]
//! ring-lint [--token] [--det] [--allowlist PATH] [--json] FILE...
//! ```
//!
//! `--workspace` discovers every `.rs` under `crates/*/src` (shims and
//! test trees exempt) and applies path-based deterministic scoping.
//! Explicit-file mode is used by the fixture tests: `--det` marks the
//! files as deterministic-path, `--allowlist` points at a
//! relaxed-ordering allowlist (default: none).
//!
//! The tree engine (parse trees + workspace passes) is the default;
//! `--token` falls back to the token-stream engine, which runs only
//! the six legacy rules. CI diffs the two on the live workspace to
//! pin their parity.
//!
//! Stale-suppression warnings go to stderr and never affect the exit
//! code.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO/parse error.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ring_verify::{rules, to_json, Mode, Workspace, RELAXED_ALLOWLIST};

struct Args {
    workspace: bool,
    json: bool,
    det: bool,
    token: bool,
    root: PathBuf,
    allowlist: Option<PathBuf>,
    tla: Option<PathBuf>,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ring-lint --workspace [--token] [--json] [--root PATH]\n\
         \u{20}      ring-lint [--token] [--det] [--allowlist PATH] [--tla SPEC] [--json] FILE..."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        workspace: false,
        json: false,
        det: false,
        token: false,
        root: PathBuf::from("."),
        allowlist: None,
        tla: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--det" => args.det = true,
            "--token" => args.token = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or_else(usage)?);
            }
            "--allowlist" => {
                args.allowlist = Some(PathBuf::from(it.next().ok_or_else(usage)?));
            }
            "--tla" => {
                args.tla = Some(PathBuf::from(it.next().ok_or_else(usage)?));
            }
            "--help" | "-h" => {
                return Err(usage());
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            _ => return Err(usage()),
        }
    }
    if args.workspace == args.files.is_empty() {
        // Exactly one of --workspace / explicit files must be given.
        Ok(args)
    } else {
        Err(usage())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    let ws = if args.workspace {
        let root = find_workspace_root(&args.root);
        match Workspace::discover(&root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("ring-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let allowlist = match &args.allowlist {
            Some(p) => match rules::load_relaxed_allowlist(p) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("ring-lint: failed to read allowlist {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            None => BTreeSet::new(),
        };
        let ws = Workspace::explicit(&args.root, args.files.clone(), args.det, allowlist);
        match &args.tla {
            Some(p) => match std::fs::read_to_string(p) {
                Ok(text) => ws.with_tla_actions(rules::parse_tla_actions(&text)),
                Err(e) => {
                    eprintln!("ring-lint: failed to read spec {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            None => ws,
        }
    };
    let ws = ws.with_mode(if args.token { Mode::Token } else { Mode::Tree });

    let outcome = match ws.run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ring-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = outcome.diagnostics;
    for w in &outcome.warnings {
        eprintln!("ring-lint: warning: {w}");
    }

    if args.json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!(
                "ring-lint: {} files clean ({} rules)",
                ws.files().len(),
                rules::ALL_RULES.len()
            );
        } else {
            eprintln!("ring-lint: {} finding(s)", diags.len());
        }
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from `start` to the directory containing the workspace's
/// `Cargo.toml` + allowlist (so `cargo run -p ring-verify` works from
/// any subdirectory).
fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.canonicalize().unwrap_or_else(|_| start.to_path_buf());
    loop {
        if dir.join(RELAXED_ALLOWLIST).is_file()
            || (dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir())
        {
            return dir;
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}
