//! A minimal Rust lexer, just enough for `ring-lint`.
//!
//! The container this repo builds in has no crate registry, so a
//! `syn`-based linter is off the table; the rules we enforce are
//! token-shaped anyway (forbidden call paths, guard-scope tracking by
//! brace depth), so a hand-rolled lexer that gets comments, strings,
//! raw strings, char-vs-lifetime and nesting right is sufficient and
//! keeps the verify layer dependency-free.
//!
//! The lexer also extracts `ring-lint` control comments:
//!
//! - `// ring-lint: allow(rule-a, rule-b)` suppresses findings for the
//!   named rules on the comment's own line *and* the following line
//!   (so both trailing and preceding-line placement work).
//! - `// ring-lint: allow-file(rule)` suppresses a rule for the whole
//!   file.

use std::collections::{BTreeMap, BTreeSet};

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A string, char, byte or numeric literal, with its raw source
    /// text (the parser needs numeric values for tag consts and tuple
    /// indices; rules never match on the text).
    Literal(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// What was lexed.
    pub kind: TokenKind,
}

/// Lexed file: token stream plus lint-control annotations.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The tokens in source order.
    pub tokens: Vec<Token>,
    /// line -> rules allowed on that line (directives cover their own
    /// line and the next).
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// Rules allowed for the entire file.
    pub file_allows: BTreeSet<String>,
    /// Every directive as written, for stale-suppression detection:
    /// `(directive line, rule, file_wide)`.
    pub directives: Vec<(u32, String, bool)>,
}

impl Lexed {
    /// True if `rule` is suppressed at `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        if self.file_allows.contains(rule) {
            return true;
        }
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.contains(rule))
    }
}

/// Lexes `src` into tokens and lint-control annotations.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.bytes().filter(|&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let end = src[i..].find('\n').map(|p| i + p).unwrap_or(bytes.len());
            record_directive(&mut out, &src[i..end], line);
            i = end;
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'\n' {
                    line += 1;
                    j += 1;
                } else if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            record_directive(&mut out, &src[i..j.min(bytes.len())], start_line);
            i = j;
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# etc.
        if (c == 'r' || c == 'b') && raw_string_len(&src[i..]).is_some() {
            let len = raw_string_len(&src[i..]).expect("checked");
            bump_lines!(&src[i..i + len]);
            out.tokens.push(Token {
                line,
                kind: TokenKind::Literal(src[i..i + len].to_string()),
            });
            i += len;
            continue;
        }
        // Identifier / keyword (also eats the `b` of b"..." handled above).
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    break;
                }
            }
            // A string immediately after `b` is a byte string literal.
            if &src[i..j] == "b" && j < bytes.len() && bytes[j] == b'"' {
                let len = cooked_string_len(&src[j..]);
                bump_lines!(&src[j..j + len]);
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Literal(src[i..j + len].to_string()),
                });
                i = j + len;
                continue;
            }
            out.tokens.push(Token {
                line,
                kind: TokenKind::Ident(src[i..j].to_string()),
            });
            i = j;
            continue;
        }
        // Number literal (decimal/hex/oct/bin, underscores, suffixes).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_alphanumeric() || d == '_' || d == '.' {
                    // `0..10` range: stop before the second dot.
                    if d == '.' && j + 1 < bytes.len() && bytes[j + 1] == b'.' {
                        break;
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                line,
                kind: TokenKind::Literal(src[i..j].to_string()),
            });
            i = j;
            continue;
        }
        // String literal.
        if c == '"' {
            let len = cooked_string_len(&src[i..]);
            bump_lines!(&src[i..i + len]);
            out.tokens.push(Token {
                line,
                kind: TokenKind::Literal(src[i..i + len].to_string()),
            });
            i += len;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(len) = char_literal_len(&src[i..]) {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Literal(src[i..i + len].to_string()),
                });
                i += len;
            } else {
                // Lifetime: consume the ident after the quote.
                let mut j = i + 1;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Lifetime,
                });
                i = j;
            }
            continue;
        }
        // Everything else: single punctuation char.
        out.tokens.push(Token {
            line,
            kind: TokenKind::Punct(c),
        });
        i += 1;
    }
    out
}

/// Records `ring-lint: allow(...)` / `allow-file(...)` directives found
/// in a comment starting at `line`.
///
/// The marker must *begin* the comment's text (after the `//`/`/*`
/// opener, doc `!`/`/`, and whitespace). A `ring-lint:` in the middle
/// of a sentence is prose about the directive, not a directive — doc
/// comments describing suppression syntax must not themselves
/// suppress, and must not trip the stale-directive checker.
fn record_directive(out: &mut Lexed, comment: &str, line: u32) {
    let text = comment
        .trim_start_matches(['/', '*'])
        .trim_start_matches(['!', '/'])
        .trim_start();
    let Some(rest) = text.strip_prefix("ring-lint:") else {
        return;
    };
    let rest = rest.trim_start();
    let (file_wide, args) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return;
    };
    let Some(close) = args.find(')') else {
        return;
    };
    for rule in args[..close].split(',') {
        let rule = rule.trim().to_string();
        if rule.is_empty() {
            continue;
        }
        out.directives.push((line, rule.clone(), file_wide));
        if file_wide {
            out.file_allows.insert(rule);
        } else {
            out.allows.entry(line).or_default().insert(rule.clone());
            out.allows.entry(line + 1).or_default().insert(rule);
        }
    }
}

/// Byte length of a cooked string literal starting at `"`, including
/// both quotes. Handles escapes; unterminated strings run to EOF.
fn cooked_string_len(s: &str) -> usize {
    let b = s.as_bytes();
    debug_assert_eq!(b[0], b'"');
    let mut j = 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Byte length of a raw (byte) string starting at `r`/`br`, or None if
/// this is not one.
fn raw_string_len(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut j = 0;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat_n('#', hashes))
        .collect();
    match s[j..].find(&closer) {
        Some(p) => Some(j + p + closer.len()),
        None => Some(s.len()),
    }
}

/// Byte length of a char literal starting at `'`, or None if it is a
/// lifetime instead.
fn char_literal_len(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    debug_assert_eq!(b[0], b'\'');
    if b.len() < 2 {
        return None;
    }
    if b[1] == b'\\' {
        // Escaped char: scan to the closing quote. Starting at the
        // backslash itself makes the first escape consume its target
        // as a pair — `'\\'` must not read its escaped backslash as a
        // fresh escape and jump the closing quote.
        let mut j = 1;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(b.len());
    }
    // `'x'` is a char literal; `'x` followed by anything else is a
    // lifetime. Multi-byte chars: find the closing quote within 6 bytes.
    for (j, &byte) in b.iter().enumerate().take(6).skip(2) {
        if byte == b'\'' {
            return Some(j + 1);
        }
        if byte == b'\n' {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_tokenize() {
        let src = r##"
            // Instant::now in a comment
            /* SystemTime::now in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"thread_rng"#;
            call();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"call".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src = "x();\n// ring-lint: allow(ambient-time)\ny();\nz();\n";
        let lexed = lex(src);
        assert!(lexed.allowed("ambient-time", 2));
        assert!(lexed.allowed("ambient-time", 3));
        assert!(!lexed.allowed("ambient-time", 4));
        assert!(!lexed.allowed("other-rule", 3));
    }

    #[test]
    fn allow_file_covers_everything() {
        let lexed = lex("// ring-lint: allow-file(relaxed-ordering)\nfoo();\n");
        assert!(lexed.allowed("relaxed-ordering", 999));
    }

    #[test]
    fn multiple_rules_in_one_directive() {
        let lexed = lex("f(); // ring-lint: allow(a-rule, b-rule)\n");
        assert!(lexed.allowed("a-rule", 1));
        assert!(lexed.allowed("b-rule", 1));
    }
}
