//! The legacy lint rules, re-hosted on the parse tree.
//!
//! Each function here is the tree-mode twin of a token rule in
//! [`crate::rules`] and must stay diagnostic-for-diagnostic identical
//! to it on well-formed code — CI runs both engines over the live
//! workspace and diffs the output (`--token` selects the fallback
//! engine). The one *deliberate* divergence is `guard-across-send`:
//! the token engine approximates guard liveness with brace depth,
//! while [`guard_across_send`] here runs a real dataflow over block
//! scopes and understands moves (`let moved = g;` transfers the
//! guard, `let _ = g;` drops it), so a guard moved into an inner
//! block no longer false-positives after the block closes. The
//! regression fixture in `tests/lint_fixtures.rs` pins that down.

use crate::ast::{
    walk_items, Block, Expr, Item, ItemCtx, LetStmt, PathExpr, SourceFile, Stmt, UseItem,
};
use crate::rules::{
    in_spans, model_drift, Diagnostic, FileContext, SuppressedHit, AMBIENT_ENTROPY, AMBIENT_TIME,
    GUARD_ACROSS_SEND, HASHMAP_ITERATION, RELAXED_ORDERING,
};

/// Runs every applicable tree-mode rule over one file, recording
/// suppressed findings into `sup`. Mirrors
/// [`crate::rules::lint_file_recording`] rule-for-rule.
pub fn lint_file_tree(
    ctx: &FileContext<'_>,
    tree: &SourceFile,
    sup: &mut Vec<SuppressedHit>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let spans = tree_test_spans(tree);
    if ctx.deterministic {
        ambient_time(ctx, tree, &spans, &mut out, sup);
        ambient_entropy(ctx, tree, &spans, &mut out, sup);
        hashmap_iteration(ctx, tree, &spans, &mut out, sup);
    }
    if ctx.model_mirror && !ctx.tla_actions.is_empty() {
        // Markers live in comments, which the tree cannot represent;
        // the raw-text implementation is shared, with tree-derived
        // test-mod spans.
        model_drift(ctx, &spans, &mut out, sup);
    }
    guard_across_send(ctx, tree, &spans, &mut out, sup);
    relaxed_ordering(ctx, tree, &spans, &mut out, sup);
    out.sort();
    out
}

/// Line spans of `#[cfg(test)] mod` blocks, from the tree.
pub fn tree_test_spans(tree: &SourceFile) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    walk_items(&tree.items, &ItemCtx::default(), &mut |_ctx, item| {
        if let Item::Mod(m) = item {
            if m.cfg_test {
                spans.push((m.start_line, m.end_line));
            }
        }
    });
    spans
}

/// Calls `f` on every expression in the file: function bodies and
/// const/static initializers, at any nesting depth (impls, traits,
/// mods, nested fns).
fn for_each_expr<'a>(tree: &'a SourceFile, f: &mut impl FnMut(&'a Expr)) {
    walk_items(
        &tree.items,
        &ItemCtx::default(),
        &mut |_ctx, item| match item {
            Item::Fn(fun) => {
                if let Some(body) = &fun.body {
                    crate::ast::walk_block_exprs(body, f);
                }
            }
            Item::Const(c) => {
                if let Some(v) = &c.value {
                    crate::ast::walk_exprs(v, f);
                }
            }
            _ => {}
        },
    );
}

/// Calls `f` on every `use` item in the file.
fn for_each_use<'a>(tree: &'a SourceFile, f: &mut impl FnMut(&'a UseItem)) {
    walk_items(&tree.items, &ItemCtx::default(), &mut |_ctx, item| {
        if let Item::Use(u) = item {
            f(u);
        }
    });
}

/// `ambient-time`, tree-hosted: a call whose callee path ends in
/// `Instant::now` / `SystemTime::now`.
fn ambient_time(
    ctx: &FileContext<'_>,
    tree: &SourceFile,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    for_each_expr(tree, &mut |e| {
        let Expr::Call { callee, .. } = e else {
            return;
        };
        let Expr::Path(p) = callee.as_ref() else {
            return;
        };
        if p.segs.len() < 2 {
            return;
        }
        let (ty, line) = {
            let pair = &p.segs[p.segs.len() - 2..];
            if pair[1].0 != "now" {
                return;
            }
            (pair[0].0.as_str(), pair[0].1)
        };
        let hint = match ty {
            "Instant" => "use ring_net::clock::now() instead",
            "SystemTime" => {
                "wall-clock time has no deterministic consumer; derive from the fabric clock"
            }
            _ => return,
        };
        if in_spans(spans, line) {
            return;
        }
        if ctx.lexed.allowed(AMBIENT_TIME, line) {
            sup.push((line, AMBIENT_TIME));
            return;
        }
        out.push(Diagnostic {
            file: ctx.rel_path.to_string(),
            line,
            rule: AMBIENT_TIME,
            message: format!("ambient `{ty}::now()` in a deterministic sim path; {hint}"),
        });
    });
}

const FORBIDDEN_ENTROPY: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "getrandom"];

/// `ambient-entropy`, tree-hosted: forbidden names in call or path
/// position — multi-segment paths anywhere, single names only as a
/// direct callee or method, `use` segments only when `::`-adjacent.
fn ambient_entropy(
    ctx: &FileContext<'_>,
    tree: &SourceFile,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    let mut hit =
        |name: &str, line: u32, out: &mut Vec<Diagnostic>, sup: &mut Vec<SuppressedHit>| {
            if in_spans(spans, line) {
                return;
            }
            if ctx.lexed.allowed(AMBIENT_ENTROPY, line) {
                sup.push((line, AMBIENT_ENTROPY));
                return;
            }
            out.push(Diagnostic {
                file: ctx.rel_path.to_string(),
                line,
                rule: AMBIENT_ENTROPY,
                message: format!(
                    "ambient entropy source `{name}` in a deterministic sim path; \
                 seed RNGs from ClusterSpec::derived_seed"
                ),
            });
        };
    type Hit<'h> = &'h mut dyn FnMut(&str, u32, &mut Vec<Diagnostic>, &mut Vec<SuppressedHit>);
    let multi_seg =
        |p: &PathExpr, out: &mut Vec<Diagnostic>, sup: &mut Vec<SuppressedHit>, hit: Hit<'_>| {
            if p.segs.len() < 2 {
                return;
            }
            for (name, line) in &p.segs {
                if FORBIDDEN_ENTROPY.contains(&name.as_str()) {
                    hit(name, *line, out, sup);
                }
            }
        };
    for_each_expr(tree, &mut |e| match e {
        // `rand::thread_rng()` / `rand::rngs::OsRng` anywhere: every
        // segment of a multi-segment path is `::`-adjacent.
        Expr::Path(p) => multi_seg(p, out, sup, &mut hit),
        Expr::StructLit { path, .. } | Expr::MacroCall { path, .. } => {
            multi_seg(path, out, sup, &mut hit)
        }
        // Bare `thread_rng()` — a single name is only call-like as a
        // direct callee (the multi-segment case fired on the path).
        Expr::Call { callee, .. } => {
            if let Expr::Path(p) = callee.as_ref() {
                if p.segs.len() == 1 && FORBIDDEN_ENTROPY.contains(&p.segs[0].0.as_str()) {
                    hit(&p.segs[0].0, p.segs[0].1, out, sup)
                }
            }
        }
        // `.from_entropy()`.
        Expr::MethodCall { method, line, .. } if FORBIDDEN_ENTROPY.contains(&method.as_str()) => {
            hit(method, *line, out, sup);
        }
        // `Msg::OsRng => …` (path position inside a pattern).
        Expr::Match(m) => {
            for arm in &m.arms {
                for pat in &arm.pats {
                    if pat.path.len() >= 2 {
                        for name in &pat.path {
                            if FORBIDDEN_ENTROPY.contains(&name.as_str()) {
                                hit(name, pat.line, out, sup);
                            }
                        }
                    }
                }
            }
        }
        _ => {}
    });
    for_each_use(tree, &mut |u| {
        for seg in &u.segs {
            if seg.colon_adjacent && FORBIDDEN_ENTROPY.contains(&seg.name.as_str()) {
                hit(&seg.name, seg.line, out, sup);
            }
        }
    });
}

/// `relaxed-ordering`, tree-hosted: a `Ordering::Relaxed` /
/// `AtomicOrdering::Relaxed` segment pair in any expression, pattern,
/// or `use` path.
fn relaxed_ordering(
    ctx: &FileContext<'_>,
    tree: &SourceFile,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    let hit = |line: u32, out: &mut Vec<Diagnostic>, sup: &mut Vec<SuppressedHit>| {
        if in_spans(spans, line) {
            return;
        }
        if ctx.relaxed_allowlisted || ctx.lexed.allowed(RELAXED_ORDERING, line) {
            sup.push((line, RELAXED_ORDERING));
            return;
        }
        out.push(Diagnostic {
            file: ctx.rel_path.to_string(),
            line,
            rule: RELAXED_ORDERING,
            message: "`Ordering::Relaxed` outside the allowlist; add the file to \
                      crates/verify/relaxed_allowlist.txt with a per-site justification \
                      or use Acquire/Release"
                .to_string(),
        });
    };
    let pair_line = |p: &PathExpr| -> Option<u32> {
        p.segs.windows(2).find_map(|w| {
            (matches!(w[0].0.as_str(), "Ordering" | "AtomicOrdering") && w[1].0 == "Relaxed")
                .then_some(w[0].1)
        })
    };
    for_each_expr(tree, &mut |e| match e {
        Expr::Path(p) => {
            if let Some(line) = pair_line(p) {
                hit(line, out, sup);
            }
        }
        Expr::StructLit { path, .. } | Expr::MacroCall { path, .. } => {
            if let Some(line) = pair_line(path) {
                hit(line, out, sup);
            }
        }
        Expr::Match(m) => {
            for arm in &m.arms {
                for pat in &arm.pats {
                    let relaxed_pair = pat.path.windows(2).any(|w| {
                        matches!(w[0].as_str(), "Ordering" | "AtomicOrdering") && w[1] == "Relaxed"
                    });
                    if relaxed_pair {
                        hit(pat.line, out, sup);
                    }
                }
            }
        }
        _ => {}
    });
    for_each_use(tree, &mut |u| {
        for w in u.segs.windows(2) {
            if matches!(w[0].name.as_str(), "Ordering" | "AtomicOrdering")
                && w[1].name == "Relaxed"
                && w[1].colon_adjacent
            {
                hit(w[0].line, out, sup);
            }
        }
    });
}

/// `hashmap-iteration`, tree-hosted: an `ITERS` method whose receiver's
/// terminal name is hash-typed, or a `for` loop directly over one.
fn hashmap_iteration(
    ctx: &FileContext<'_>,
    tree: &SourceFile,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    const ITERS: [&str; 9] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_keys",
        "into_values",
    ];
    let hit = |name: &str,
               how: String,
               line: u32,
               out: &mut Vec<Diagnostic>,
               sup: &mut Vec<SuppressedHit>| {
        if in_spans(spans, line) {
            return;
        }
        if ctx.lexed.allowed(HASHMAP_ITERATION, line) {
            sup.push((line, HASHMAP_ITERATION));
            return;
        }
        out.push(Diagnostic {
            file: ctx.rel_path.to_string(),
            line,
            rule: HASHMAP_ITERATION,
            message: format!(
                "iteration over hash-ordered `{name}` via {how} in a seeded path; \
                 hash order is process-random — use BTreeMap/BTreeSet or sort first"
            ),
        });
    };
    for_each_expr(tree, &mut |e| match e {
        Expr::MethodCall { recv, method, .. } if ITERS.contains(&method.as_str()) => {
            // The diagnostic anchors on the *receiver name's* line, as
            // the token engine does (`name.iter()` reports `name`).
            let terminal = match recv.as_ref() {
                Expr::Path(p) => p.segs.last().map(|(n, l)| (n.as_str(), *l)),
                Expr::Field { name, line, .. } => Some((name.as_str(), *line)),
                _ => None,
            };
            if let Some((name, line)) = terminal {
                if ctx.hash_names.contains(name) {
                    hit(name, format!("`.{method}()`"), line, out, sup);
                }
            }
        }
        Expr::For { iter, .. } => {
            // `for x in [&[mut]] name { … }` — a bare name only; field
            // receivers don't fire here (nor in the token engine).
            let mut it: &Expr = iter;
            if let Expr::Ref { inner, .. } = it {
                it = inner;
            }
            if let Expr::Path(p) = it {
                if p.segs.len() == 1 && ctx.hash_names.contains(&p.segs[0].0) {
                    hit(&p.segs[0].0, "a `for` loop".into(), p.segs[0].1, out, sup);
                }
            }
        }
        _ => {}
    });
}

/// A live lock guard during the [`guard_across_send`] dataflow.
struct LiveGuard {
    name: String,
    /// Line of the binding `let` (reported in the diagnostic).
    line: u32,
    /// Block-nesting depth that owns the binding; the guard dies when
    /// that scope closes.
    scope: u32,
}

/// `guard-across-send`, tree-hosted as a real guard-liveness dataflow.
///
/// A guard becomes live at `let g = <expr>.lock()/.read()/.write()`
/// (zero-arg, optionally `.unwrap()` / `.expect("…")`), and dies when
///
/// - its block scope closes (match arms, closures, and inner blocks
///   are all real scopes here — no brace-counting),
/// - `drop(g)` runs,
/// - it is shadowed by a re-`let` of the same name,
/// - it is *moved*: `let other = g;` transfers liveness to `other`
///   (scoped to the block the move occurs in) and `let _ = g;` drops
///   it on the spot. The token engine cannot see moves — this is the
///   dataflow half of the fixture pair in `tests/lint_fixtures.rs`.
///
/// A fabric `.send()` / `.multicast()` / `.post()` while any guard is
/// live reports the most recently acquired one.
fn guard_across_send(
    ctx: &FileContext<'_>,
    tree: &SourceFile,
    spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
    sup: &mut Vec<SuppressedHit>,
) {
    struct Flow<'a, 'b> {
        ctx: &'a FileContext<'a>,
        spans: &'a [(u32, u32)],
        out: &'b mut Vec<Diagnostic>,
        sup: &'b mut Vec<SuppressedHit>,
        guards: Vec<LiveGuard>,
        depth: u32,
    }
    const SENDS: [&str; 3] = ["send", "multicast", "post"];

    impl Flow<'_, '_> {
        fn block(&mut self, b: &Block) {
            self.depth += 1;
            for stmt in &b.stmts {
                match stmt {
                    Stmt::Let(l) => self.let_stmt(l),
                    Stmt::Expr(e) => self.expr(e),
                    // Nested fns are separate frames: a guard of the
                    // enclosing fn is not live inside them. They get
                    // their own walk via `walk_items`.
                    Stmt::Item(_) => {}
                }
            }
            let depth = self.depth;
            self.guards.retain(|g| g.scope < depth);
            self.depth -= 1;
        }

        fn let_stmt(&mut self, l: &LetStmt) {
            if let Some(name) = &l.name {
                if guard_init(l.init.as_ref()).is_some() {
                    // The initializer is the acquisition itself; the
                    // token engine skips its tokens, so don't scan it
                    // for sends either.
                    self.guards.retain(|g| g.name != *name);
                    self.guards.push(LiveGuard {
                        name: name.clone(),
                        line: l.line,
                        scope: self.depth,
                    });
                    return;
                }
                // Move: `let other = g;` / `let _ = g;`.
                if let Some(Expr::Path(p)) = &l.init {
                    if p.segs.len() == 1 {
                        if let Some(pos) = self.guards.iter().position(|g| g.name == p.segs[0].0) {
                            let moved = self.guards.remove(pos);
                            if name != "_" {
                                // Re-scoped to the current block: it
                                // dies where the new owner does.
                                self.guards.push(LiveGuard {
                                    name: name.clone(),
                                    line: moved.line,
                                    scope: self.depth,
                                });
                            }
                            return;
                        }
                    }
                }
            }
            if let Some(init) = &l.init {
                self.expr(init);
            }
            if let Some(eb) = &l.else_block {
                self.block(eb);
            }
        }

        fn expr(&mut self, e: &Expr) {
            match e {
                Expr::MethodCall {
                    recv, method, args, ..
                } => {
                    self.expr(recv);
                    if SENDS.contains(&method.as_str()) && !self.guards.is_empty() {
                        self.send(method, e.line());
                    }
                    for a in args {
                        self.expr(a);
                    }
                }
                Expr::Call { callee, args, .. } => {
                    // `drop(g)` ends g's live-range.
                    if let Expr::Path(p) = callee.as_ref() {
                        if p.segs.len() == 1 && p.segs[0].0 == "drop" && args.len() == 1 {
                            if let Expr::Path(arg) = &args[0] {
                                if arg.segs.len() == 1 {
                                    let name = arg.segs[0].0.clone();
                                    self.guards.retain(|g| g.name != name);
                                    return;
                                }
                            }
                        }
                    }
                    self.expr(callee);
                    for a in args {
                        self.expr(a);
                    }
                }
                Expr::Block(b) => self.block(b),
                Expr::If {
                    cond, then, else_, ..
                } => {
                    self.expr(cond);
                    self.block(then);
                    if let Some(e2) = else_ {
                        self.expr(e2);
                    }
                }
                Expr::Match(m) => {
                    self.expr(&m.scrutinee);
                    for arm in &m.arms {
                        self.expr(&arm.body);
                    }
                }
                Expr::While { cond, body, .. } => {
                    self.expr(cond);
                    self.block(body);
                }
                Expr::For { iter, body, .. } => {
                    self.expr(iter);
                    self.block(body);
                }
                Expr::Loop { body, .. } => self.block(body),
                Expr::Closure { body, .. } => self.expr(body),
                Expr::Field { recv, .. } => self.expr(recv),
                Expr::Index { recv, index, .. } => {
                    self.expr(recv);
                    self.expr(index);
                }
                Expr::StructLit { fields, .. } => {
                    for (_, v) in fields {
                        self.expr(v);
                    }
                }
                Expr::MacroCall { args, .. } => {
                    for a in args {
                        self.expr(a);
                    }
                }
                Expr::Ref { inner, .. } => self.expr(inner),
                Expr::Seq { parts, .. } => {
                    for p in parts {
                        self.expr(p);
                    }
                }
                Expr::Path(_) | Expr::Lit { .. } | Expr::Unknown { .. } => {}
            }
        }

        fn send(&mut self, method: &str, line: u32) {
            if in_spans(self.spans, line) {
                return;
            }
            if self.ctx.lexed.allowed(GUARD_ACROSS_SEND, line) {
                self.sup.push((line, GUARD_ACROSS_SEND));
                return;
            }
            let g = self.guards.last().expect("non-empty");
            self.out.push(Diagnostic {
                file: self.ctx.rel_path.to_string(),
                line,
                rule: GUARD_ACROSS_SEND,
                message: format!(
                    "fabric `.{method}()` while lock guard `{}` (line {}) is held; \
                     drop the guard first — a send under partition can block \
                     and deadlock every thread queued on the lock",
                    g.name, g.line
                ),
            });
        }
    }

    let mut bodies: Vec<&Block> = Vec::new();
    walk_items(&tree.items, &ItemCtx::default(), &mut |_ctx, item| {
        if let Item::Fn(f) = item {
            if let Some(body) = &f.body {
                bodies.push(body);
            }
        }
    });
    let mut flow = Flow {
        ctx,
        spans,
        out,
        sup,
        guards: Vec::new(),
        depth: 0,
    };
    for body in bodies {
        flow.guards.clear();
        flow.depth = 0;
        flow.block(body);
    }
}

/// If a `let` initializer is a lock acquisition —
/// `….lock()/.read()/.write()` (zero-arg), under at most two
/// `.unwrap()` / `.expect(<literal>)` wrappers, the same shape the
/// token engine's `guard_binding` accepts — returns the receiver of
/// the lock call.
pub(crate) fn guard_init(init: Option<&Expr>) -> Option<&Expr> {
    let mut e = init?;
    for _ in 0..2 {
        match e {
            Expr::MethodCall {
                recv, method, args, ..
            } if method == "unwrap" && args.is_empty() => e = recv,
            Expr::MethodCall {
                recv, method, args, ..
            } if method == "expect" && args.len() == 1 && matches!(args[0], Expr::Lit { .. }) => {
                e = recv
            }
            _ => break,
        }
    }
    match e {
        Expr::MethodCall {
            recv, method, args, ..
        } if args.is_empty() && matches!(method.as_str(), "lock" | "read" | "write") => Some(recv),
        _ => None,
    }
}

/// Parses a file and runs the tree rules — test convenience.
#[cfg(test)]
pub(crate) fn lint_source(
    rel_path: &str,
    src: &str,
    deterministic: bool,
    hash_names: &std::collections::BTreeSet<String>,
) -> Vec<Diagnostic> {
    let lexed = crate::lexer::lex(src);
    let tree = crate::parse::parse(&lexed);
    assert!(tree.errors.is_empty(), "parse errors: {:?}", tree.errors);
    let ctx = FileContext {
        rel_path,
        raw: src,
        lexed: &lexed,
        deterministic,
        model_mirror: false,
        relaxed_allowlisted: false,
        hash_names,
        tla_actions: &std::collections::BTreeSet::new(),
    };
    lint_file_tree(&ctx, &tree, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn names(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn guard_moved_into_inner_block_does_not_fire() {
        // The token engine false-positives here (see
        // tests/lint_fixtures.rs); the dataflow must not.
        let src = r#"
fn f(fabric: &Fabric, state: &Mutex<u32>) {
    let g = state.lock().unwrap();
    {
        let _owned = g;
    }
    fabric.send(1);
}
"#;
        let diags = lint_source("crates/net/src/x.rs", src, true, &names(&[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn guard_let_underscore_drops() {
        let src = r#"
fn f(fabric: &Fabric, state: &Mutex<u32>) {
    let g = state.lock().unwrap();
    let _ = g;
    fabric.send(1);
}
"#;
        let diags = lint_source("crates/net/src/x.rs", src, true, &names(&[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn guard_move_keeps_liveness_in_same_scope() {
        let src = r#"
fn f(fabric: &Fabric, state: &Mutex<u32>) {
    let g = state.lock().unwrap();
    let held = g;
    fabric.send(1);
}
"#;
        let diags = lint_source("crates/net/src/x.rs", src, true, &names(&[]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
        assert!(diags[0].message.contains("`held`"), "{}", diags[0].message);
    }

    #[test]
    fn match_arm_scope_ends_guard() {
        let src = r#"
fn f(fabric: &Fabric, state: &Mutex<u32>, x: u8) {
    match x {
        0 => {
            let g = state.lock().unwrap();
            *g += 1;
        }
        _ => {}
    }
    fabric.send(1);
}
"#;
        let diags = lint_source("crates/net/src/x.rs", src, true, &names(&[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn send_in_closure_under_guard_fires() {
        let src = r#"
fn f(fabric: &Fabric, state: &Mutex<u32>) {
    let g = state.lock().unwrap();
    let run = || fabric.post(2);
    run();
}
"#;
        let diags = lint_source("crates/net/src/x.rs", src, true, &names(&[]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn use_line_entropy_fires_like_token_engine() {
        let src = "use rand::thread_rng;\nfn f() { let x = 1; }\n";
        let diags = lint_source("crates/net/src/x.rs", src, true, &names(&[]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].rule, AMBIENT_ENTROPY);
    }

    #[test]
    fn hashmap_iteration_reports_receiver_name_line() {
        let src = r#"
struct S { pending: HashMap<u32, u32> }
impl S {
    fn f(&self) {
        for (_k, _v) in self.pending.iter() {
        }
    }
}
"#;
        let diags = lint_source("crates/net/src/x.rs", src, true, &names(&["pending"]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
        assert!(diags[0].message.contains("`.iter()`"));
    }
}
