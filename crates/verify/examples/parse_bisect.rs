//! Throwaway-style debug harness kept for parser triage: parses the
//! files given on the command line (or the whole `crates/` tree) and
//! prints any parse errors.
use std::path::{Path, PathBuf};

use ring_verify::lexer::lex;
use ring_verify::parse::parse;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<PathBuf> = if args.is_empty() {
        let mut v = Vec::new();
        collect_rs(Path::new("crates"), &mut v);
        v
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    let mut bad = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read file");
        let tree = parse(&lex(&src));
        for e in &tree.errors {
            println!("{}:{}: {}", path.display(), e.line, e.msg);
            bad += 1;
        }
    }
    println!("{} files, {} parse errors", files.len(), bad);
    std::process::exit(if bad == 0 { 0 } else { 1 });
}
