//! Microbenchmarks of the GF(2^8) substrate: the region operations that
//! dominate encode/decode cost, and the matrix routines used at code
//! construction and recovery time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ring_gf::{region, Gf256, Matrix};

fn region_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_region");
    for size in [1usize << 10, 1 << 14, 1 << 18] {
        let src: Vec<u8> = (0..size).map(|i| i as u8).collect();
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("xor_into", size), &size, |b, _| {
            b.iter(|| region::xor_into(&mut dst, &src));
        });
        group.bench_with_input(BenchmarkId::new("mul_acc", size), &size, |b, _| {
            b.iter(|| region::mul_acc(&mut dst, &src, Gf256(0x1D)));
        });
        group.bench_with_input(BenchmarkId::new("mul_into", size), &size, |b, _| {
            b.iter(|| region::mul_into(&mut dst, &src, Gf256(0x1D)));
        });
    }
    group.finish();
}

fn matrix_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_matrix");
    for n in [4usize, 8, 16] {
        let m = Matrix::vandermonde(n, n);
        group.bench_with_input(BenchmarkId::new("invert", n), &n, |b, _| {
            b.iter(|| m.invert().expect("invertible"));
        });
    }
    group.bench_function("systematic_3_2", |b| b.iter(|| Matrix::systematic(3, 2)));
    group.bench_function("systematic_7_5", |b| b.iter(|| Matrix::systematic(7, 5)));
    group.finish();
}

criterion_group!(benches, region_ops, matrix_ops);
criterion_main!(benches);
