//! End-to-end KVS operation benchmarks on an in-process cluster with no
//! injected wire latency: isolates the protocol-processing cost of each
//! storage scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_kvs::{Cluster, ClusterSpec};
use ring_net::LatencyModel;

fn cluster() -> Cluster {
    Cluster::start(ClusterSpec {
        latency: LatencyModel::instant(),
        ..ClusterSpec::paper_evaluation()
    })
}

fn put_per_scheme(c: &mut Criterion) {
    let cl = cluster();
    let mut client = cl.client();
    let value = vec![0x42u8; 1024];
    let mut group = c.benchmark_group("kvs_put_1k");
    let mut key = 0u64;
    for (mid, label) in [(0u32, "REP1"), (2, "REP3"), (6, "SRS32")] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mid, |b, &mid| {
            b.iter(|| {
                key += 1;
                client.put_to(key, &value, mid).expect("put")
            })
        });
    }
    group.finish();
    drop(client);
    cl.shutdown();
}

fn get_and_move(c: &mut Criterion) {
    let cl = cluster();
    let mut client = cl.client();
    let value = vec![0x42u8; 1024];
    for k in 0..256u64 {
        client.put_to(k, &value, (k % 7) as u32).expect("preload");
    }
    let mut group = c.benchmark_group("kvs_misc");
    let mut k = 0u64;
    group.bench_function("get_1k", |b| {
        b.iter(|| {
            k += 1;
            client.get(k % 256).expect("get")
        })
    });
    let mut mv = 0u64;
    group.bench_function("move_rep3_to_srs32", |b| {
        b.iter(|| {
            mv += 1;
            let key = 10_000 + mv;
            client.put_to(key, &value, 2).expect("put");
            client.move_key(key, 6).expect("move")
        })
    });
    group.finish();
    drop(client);
    cl.shutdown();
}

criterion_group!(benches, put_per_scheme, get_and_move);
criterion_main!(benches);
