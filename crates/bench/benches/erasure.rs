//! Coding-layer benchmarks, including the paper's key design ablation:
//! delta-based parity updates (the put path, Section 3.2 "Update")
//! versus re-encoding the whole stripe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ring_erasure::{Rs, SrsCode};

fn object(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + 7) as u8).collect()
}

fn rs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode");
    for size in [1usize << 10, 1 << 14, 1 << 18] {
        let obj = object(size);
        for (k, m) in [(3usize, 2usize), (5, 2), (7, 3)] {
            let rs = Rs::new(k, m).expect("valid params");
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("RS({k},{m})"), size),
                &size,
                |b, _| b.iter(|| rs.encode_object(&obj).expect("encode")),
            );
        }
    }
    group.finish();
}

fn rs_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_reconstruct");
    let rs = Rs::new(3, 2).expect("valid params");
    for size in [1usize << 10, 1 << 16] {
        let stripe = rs.encode_object(&object(size)).expect("encode");
        let all: Vec<Vec<u8>> = stripe
            .data
            .iter()
            .chain(stripe.parity.iter())
            .cloned()
            .collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("two_losses", size), &size, |b, _| {
            b.iter(|| {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[0] = None;
                shards[4] = None;
                rs.reconstruct(&mut shards).expect("reconstruct");
                shards
            })
        });
    }
    group.finish();
}

fn srs_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("srs");
    let code = SrsCode::new(3, 2, 6).expect("valid params");
    for size in [1usize << 12, 1 << 16] {
        let obj = object(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode_3_2_6", size), &size, |b, _| {
            b.iter(|| code.encode_object(&obj).expect("encode"))
        });
        let enc = code.encode_object(&obj).expect("encode");
        let parity: Vec<Option<Vec<u8>>> = enc.parity_nodes.iter().cloned().map(Some).collect();
        group.bench_with_input(
            BenchmarkId::new("recover_node_3_2_6", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let mut data: Vec<Option<Vec<u8>>> =
                        enc.data_nodes.iter().cloned().map(Some).collect();
                    data[2] = None;
                    code.recover_data_node(2, &data, &parity).expect("recover")
                })
            },
        );
    }
    group.finish();
}

/// Ablation: updating one data block's parity via deltas vs re-encoding
/// the entire stripe — the reason puts scale with the object size, not
/// the stripe size.
fn delta_vs_reencode(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity_update_ablation");
    let rs = Rs::new(3, 2).expect("valid params");
    for size in [1usize << 12, 1 << 16] {
        let stripe = rs.encode_object(&object(size)).expect("encode");
        let mut new_block = stripe.data[1].clone();
        for b in new_block.iter_mut() {
            *b ^= 0x5A;
        }
        group.throughput(Throughput::Bytes((size / 3) as u64));
        group.bench_with_input(BenchmarkId::new("delta_update", size), &size, |b, _| {
            b.iter(|| {
                let delta = ring_gf::region::delta(&stripe.data[1], &new_block);
                let mut parity = stripe.parity.clone();
                for (p, block) in parity.iter_mut().enumerate() {
                    let pd = rs.parity_delta(p, 1, &delta);
                    Rs::apply_parity_delta(block, &pd);
                }
                parity
            })
        });
        group.bench_with_input(BenchmarkId::new("full_reencode", size), &size, |b, _| {
            b.iter(|| {
                let mut data = stripe.data.clone();
                data[1] = new_block.clone();
                let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
                rs.encode(&refs).expect("encode")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    rs_encode,
    rs_reconstruct,
    srs_ops,
    delta_vs_reencode
);
criterion_main!(benches);
