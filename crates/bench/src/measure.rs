//! Latency and throughput measurement utilities.

use std::time::{Duration, Instant};

use ring_kvs::proto::Msg;
use ring_kvs::{Cluster, RingClient};
use ring_net::Transport;

/// Median, 90th and 99th percentile; p50/p90 are what Section 6
/// reports, p99 feeds the tail-latency tracking.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct LatencySummary {
    /// Median latency in microseconds.
    pub median_us: f64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Summarises a sample set into median, p90 and p99.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize(mut samples: Vec<Duration>) -> LatencySummary {
    assert!(!samples.is_empty(), "no samples collected");
    samples.sort_unstable();
    let q = |f: f64| -> f64 {
        let idx = ((samples.len() - 1) as f64 * f).round() as usize;
        samples[idx].as_secs_f64() * 1e6
    };
    LatencySummary {
        median_us: q(0.5),
        p90_us: q(0.9),
        p99_us: q(0.99),
        samples: samples.len(),
    }
}

/// Measures put latency into `memgest` for objects of `size` bytes.
/// Each repetition writes a distinct key (fresh heap range, as in an
/// insert-heavy workload).
pub fn put_latency<T: Transport<Msg>>(
    client: &mut RingClient<T>,
    memgest: u32,
    size: usize,
    reps: usize,
    key_base: u64,
) -> LatencySummary {
    let value = vec![0xABu8; size];
    let mut samples = Vec::with_capacity(reps);
    for i in 0..reps {
        let key = key_base + i as u64;
        let t0 = Instant::now();
        client
            .put_to(key, &value, memgest)
            .expect("put during benchmark");
        samples.push(t0.elapsed());
    }
    summarize(samples)
}

/// Measures get latency for pre-loaded keys.
pub fn get_latency<T: Transport<Msg>>(
    client: &mut RingClient<T>,
    keys: &[u64],
    reps: usize,
) -> LatencySummary {
    let mut samples = Vec::with_capacity(reps);
    for i in 0..reps {
        let key = keys[i % keys.len()];
        let t0 = Instant::now();
        client.get(key).expect("get during benchmark");
        samples.push(t0.elapsed());
    }
    summarize(samples)
}

/// Measures move latency from `src` to `dst` for objects of `size`
/// bytes. Each repetition uses a fresh key pre-loaded into `src`.
pub fn move_latency<T: Transport<Msg>>(
    client: &mut RingClient<T>,
    src: u32,
    dst: u32,
    size: usize,
    reps: usize,
    key_base: u64,
) -> LatencySummary {
    let value = vec![0xCDu8; size];
    for i in 0..reps {
        client
            .put_to(key_base + i as u64, &value, src)
            .expect("preload");
    }
    let mut samples = Vec::with_capacity(reps);
    for i in 0..reps {
        let key = key_base + i as u64;
        let t0 = Instant::now();
        client.move_key(key, dst).expect("move during benchmark");
        samples.push(t0.elapsed());
    }
    summarize(samples)
}

/// One second of an open-loop throughput trace.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct ThroughputSample {
    /// Seconds since the trace started.
    pub second: f64,
    /// Number of concurrent clients during this interval.
    pub clients: usize,
    /// Completed requests per second.
    pub completed_per_sec: f64,
}

/// Runs an open-loop put workload: every `interval` another client
/// joins, each offering `offered_per_client` requests/second, up to
/// `max_clients`; completions are counted per interval.
///
/// Each client drives the pipelined (`put_nb`/`poll`) API with a deep
/// window, so offered requests ride the fabric concurrently instead of
/// one at a time. Matches the Figure 9 methodology with the absolute
/// rate scaled to the simulated fabric.
pub fn ramp_throughput(
    cluster: &Cluster,
    memgest: u32,
    value_size: usize,
    offered_per_client: f64,
    max_clients: usize,
    interval: Duration,
) -> Vec<ThroughputSample> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    let mut samples = Vec::new();
    let t0 = Instant::now();

    for joined in 1..=max_clients {
        // Launch the next client.
        let mut client = cluster.client();
        let stop_c = Arc::clone(&stop);
        let done_c = Arc::clone(&completed);
        let value = vec![0x42u8; value_size];
        let key_base = joined as u64 * 10_000_000;
        handles.push(std::thread::spawn(move || {
            // Sleep-paced open loop over the pipelined client: send the
            // requests that became due, drain completions, then yield
            // the CPU — client threads must not starve the
            // single-threaded servers. The failover timeout is raised so
            // queueing under overload is measured as latency, not
            // amplified into retry traffic.
            let gap = Duration::from_secs_f64(1.0 / offered_per_client);
            let cap = 256usize;
            client.set_window(cap);
            client.set_timeout(Duration::from_secs(2));
            let mut next = Instant::now();
            let mut key = key_base;
            while !stop_c.load(Ordering::Relaxed) {
                let now = Instant::now();
                while next <= now && client.in_flight() < cap {
                    if client.put_nb(key, &value, Some(memgest)).is_ok() {
                        key += 1;
                    }
                    next += gap;
                }
                if now > next + Duration::from_millis(50) {
                    next = now; // Don't accumulate unbounded debt.
                }
                let done = client.poll().len();
                done_c.fetch_add(done as u64, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(500));
            }
        }));

        // Sample completions over this interval.
        let start_count = completed.load(Ordering::Relaxed);
        let interval_start = Instant::now();
        std::thread::sleep(interval);
        let elapsed = interval_start.elapsed().as_secs_f64();
        let done = completed.load(Ordering::Relaxed) - start_count;
        samples.push(ThroughputSample {
            second: t0.elapsed().as_secs_f64(),
            clients: joined,
            completed_per_sec: done as f64 / elapsed,
        });
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    samples
}

/// Closed-loop throughput with a bounded pipeline: issues YCSB ops from
/// the generator for `duration`, keeping up to `window` requests in
/// flight on the pipelined client, and returns completed
/// requests/second.
pub fn mixed_throughput(
    cluster: &Cluster,
    memgest: u32,
    gen: &mut ring_workload::WorkloadGen,
    duration: Duration,
    window: usize,
) -> f64 {
    let mut client = cluster.client();
    let value = vec![0x24u8; gen.spec().value_len];

    // Preload every key so gets always hit.
    for op in gen.load_phase().collect::<Vec<_>>() {
        client
            .put_to(op.key(), &value, memgest)
            .expect("preload put");
    }

    client.set_window(window);
    let t0 = Instant::now();
    let mut done = 0u64;
    while t0.elapsed() < duration {
        while client.in_flight() < window {
            let op = gen.next_op();
            let ok = match op {
                ring_workload::Op::Get { key } => client.get_nb(key).is_ok(),
                ring_workload::Op::Put { key, .. } => {
                    client.put_nb(key, &value, Some(memgest)).is_ok()
                }
            };
            if !ok {
                break;
            }
        }
        let completed = client.poll().len();
        done += completed as u64;
        if completed == 0 {
            // Let the server threads run (the host may have few cores).
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // Drain the tail (retries bound how long a straggler can take).
    done += client.drain().len() as u64;
    done as f64 / t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = summarize(samples);
        assert!((s.median_us - 51.0).abs() <= 1.0, "median {}", s.median_us);
        assert!((s.p90_us - 90.0).abs() <= 1.5, "p90 {}", s.p90_us);
        assert!((s.p99_us - 99.0).abs() <= 1.5, "p99 {}", s.p99_us);
        assert_eq!(s.samples, 100);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn summarize_empty_panics() {
        let _ = summarize(Vec::new());
    }
}
