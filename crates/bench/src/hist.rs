//! HDR-style latency histograms: log-linear buckets with bounded
//! relative error, built for tail percentiles (p99, p999) where the
//! sort-and-index estimator of [`crate::measure::summarize`] needs
//! every sample kept around.
//!
//! The layout is the classic high-dynamic-range one: time is split into
//! power-of-two segments, each segment into [`SUB_BUCKETS`] linear
//! sub-buckets, so any recorded value lands in a bucket whose width is
//! at most `1/SUB_BUCKETS` of its magnitude (≤ ~3% relative error with
//! 32 sub-buckets). Recording is O(1) and the whole histogram is a few
//! KiB regardless of sample count — it can sit inside a benchmark's hot
//! loop without perturbing what it measures.

use std::time::Duration;

/// Linear sub-buckets per power-of-two segment: bounds relative
/// quantization error by `1/32` ≈ 3%.
const SUB_BUCKETS: usize = 32;
/// Power-of-two segments above the linear range: with nanosecond
/// resolution, segment 38 tops out above 4 minutes — more than any
/// sane latency sample.
const SEGMENTS: usize = 39;

/// A log-linear histogram of durations with nanosecond resolution.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; SEGMENTS * SUB_BUCKETS],
            total: 0,
            max_ns: 0,
        }
    }

    /// Bucket index of a nanosecond value.
    ///
    /// Segment 0 covers `0..SUB_BUCKETS` ns linearly; every later
    /// segment `s` covers `SUB_BUCKETS << (s-1) .. SUB_BUCKETS << s`
    /// in `SUB_BUCKETS` equal sub-buckets, so the leading bit picks the
    /// segment and the next 5 bits the sub-bucket.
    fn index(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let p = 63 - ns.leading_zeros() as usize; // >= 5 here.
        let seg = (p - (SUB_BUCKETS.trailing_zeros() as usize - 1)).min(SEGMENTS - 1);
        let sub = ((ns >> (seg - 1)) as usize)
            .saturating_sub(SUB_BUCKETS)
            .min(SUB_BUCKETS - 1);
        seg * SUB_BUCKETS + sub
    }

    /// Representative (midpoint) nanosecond value of a bucket.
    fn value_of(index: usize) -> u64 {
        let (seg, sub) = (index / SUB_BUCKETS, index % SUB_BUCKETS);
        if seg == 0 {
            sub as u64
        } else {
            let base = (SUB_BUCKETS + sub) as u64;
            // Midpoint of the bucket's [base << (seg-1), (base+1) << (seg-1)) span.
            (base << (seg - 1)) + (1u64 << (seg - 1)) / 2
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        let ns = sample.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[LatencyHistogram::index(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the bucket midpoint at
    /// which the cumulative count first reaches `ceil(q * total)`
    /// (exact max for `q = 1`).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if q >= 1.0 {
            return Duration::from_nanos(self.max_ns);
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(LatencyHistogram::value_of(i).min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// The standard tail summary: p50 / p99 / p999 in microseconds.
    pub fn tail_summary(&self) -> TailSummary {
        let us = |q: f64| self.quantile(q).as_secs_f64() * 1e6;
        TailSummary {
            p50_us: us(0.50),
            p99_us: us(0.99),
            p999_us: us(0.999),
            samples: self.total,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// p50/p99/p999 of one histogram, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TailSummary {
    /// Median latency.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Number of recorded samples.
    pub samples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.len(), 10_000);
        let rel = |q: f64, expect_us: f64| {
            let got = h.quantile(q).as_secs_f64() * 1e6;
            (got - expect_us).abs() / expect_us
        };
        assert!(
            rel(0.50, 5_000.0) < 0.04,
            "p50 off by {}",
            rel(0.5, 5_000.0)
        );
        assert!(
            rel(0.99, 9_900.0) < 0.04,
            "p99 off by {}",
            rel(0.99, 9_900.0)
        );
        assert!(rel(0.999, 9_990.0) < 0.04);
        // Exact max at q = 1.
        assert_eq!(h.quantile(1.0), Duration::from_micros(10_000));
    }

    #[test]
    fn tail_is_seen_by_p999_but_not_p50() {
        // 999 fast samples and 10 slow outliers: the median must stay
        // fast, p999 must land in the outlier range.
        let mut h = LatencyHistogram::new();
        for _ in 0..990 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        let t = h.tail_summary();
        assert!(t.p50_us < 150.0, "p50 {}", t.p50_us);
        assert!(t.p999_us > 40_000.0, "p999 {}", t.p999_us);
        assert_eq!(t.samples, 1000);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Round-tripping any value through its bucket midpoint stays
        // within the design's ~3% plus half a bucket.
        for ns in [1u64, 31, 32, 33, 1_000, 12_345, 1_000_000, 987_654_321] {
            let idx = LatencyHistogram::index(ns);
            let mid = LatencyHistogram::value_of(idx);
            let err = (mid as f64 - ns as f64).abs() / ns as f64;
            assert!(err <= 0.05, "ns {ns} -> mid {mid} (err {err})");
        }
    }

    #[test]
    fn wide_range_single_histogram() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(5));
        h.record(Duration::from_secs(120));
        assert_eq!(h.len(), 2);
        assert!(h.quantile(1.0) >= Duration::from_secs(119));
        assert!(h.quantile(0.01) <= Duration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_quantile_panics() {
        LatencyHistogram::new().quantile(0.5);
    }
}
