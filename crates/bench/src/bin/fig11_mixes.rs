//! Figure 11: single-client throughput under YCSB get:put mixes
//! ((100:0), (95:5), (50:50), (0:100)) with Zipfian keys and 1 KiB
//! values, for REP1, REP3, SRS21 and SRS32.
//!
//! Expected shape (Section 6.3): get-only throughput identical across
//! memgests (gets share one code path); throughput drops as the put
//! ratio rises; REP1 has the highest put-only rate with the others
//! slightly below it.

use std::time::Duration;

use ring_bench::measure::mixed_throughput;
use ring_bench::output::{header, kreq, write_json};
use ring_bench::quick_mode;
use ring_bench::workbench::{memgest_id, paper_cluster};
use ring_workload::{KeyDistribution, WorkloadGen, WorkloadSpec};

#[derive(serde::Serialize)]
struct Row {
    scheme: String,
    get_ratio: f64,
    req_per_sec: f64,
}

fn main() {
    let duration = if quick_mode() {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let key_count = if quick_mode() { 2_000 } else { 20_000 };
    let mut rows = Vec::new();

    header(
        "Figure 11: single-client throughput per (get:put) mix",
        &["scheme", "mix", "req/s"],
    );
    for label in ["REP1", "REP3", "SRS21", "SRS32"] {
        for get_ratio in [1.0, 0.95, 0.5, 0.0] {
            let cluster = paper_cluster();
            let spec = WorkloadSpec {
                key_count,
                value_len: 1024,
                get_ratio,
                distribution: KeyDistribution::ScrambledZipfian,
            };
            let mut gen = WorkloadGen::new(spec, cluster.spec().derived_seed("fig11"));
            let rate = mixed_throughput(&cluster, memgest_id(label), &mut gen, duration, 64);
            println!(
                "{label}\t({:.0}%:{:.0}%)\t{}",
                get_ratio * 100.0,
                (1.0 - get_ratio) * 100.0,
                kreq(rate)
            );
            rows.push(Row {
                scheme: label.to_string(),
                get_ratio,
                req_per_sec: rate,
            });
            cluster.shutdown();
        }
    }
    write_json("fig11_mixes", &rows);
}
