//! Runs every table/figure binary in sequence (forwarding `--quick`),
//! regenerating the full `results/` directory used by EXPERIMENTS.md.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig2_reliability",
    "fig7_latency",
    "fig7c_baselines",
    "fig8_move",
    "fig9_throughput",
    "fig10_pricing",
    "fig11_mixes",
    "fig12_recovery",
    "fig13_block_recovery",
    "fig16_availability",
    "balance_ablation",
    "spc_replay",
];

fn main() {
    let quick = ring_bench::quick_mode();
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        println!("\n######## {name} ########");
        let mut cmd = Command::new(exe_dir.join(name));
        if quick {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failed.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to start: {e} (build with `cargo build -p ring-bench --bins --release` first)");
                failed.push(*name);
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
