//! Figure 8a/8b: move latency vs object size, by destination memgest.
//!
//! Expected shape (Section 6.2): only the destination scheme matters
//! (the source data is locally available); moving to the unreliable
//! REP1 is roughly size-independent (no client transfer — the object is
//! copied from main memory) and cheaper than a direct put of the same
//! object.

use ring_bench::measure::{move_latency, LatencySummary};
use ring_bench::output::{header, us, write_json};
use ring_bench::workbench::{memgest_id, paper_cluster, MEMGESTS};
use ring_bench::{object_sizes, reps};

#[derive(serde::Serialize)]
struct Row {
    dst: String,
    size: usize,
    mv: LatencySummary,
}

fn main() {
    let n = reps(500, 30);
    let cluster = paper_cluster();
    let mut client = cluster.client();
    let mut rows = Vec::new();
    let mut key_base = 0u64;

    header(
        "Figure 8: move latency (us, median/p90) vs object size, by destination",
        &["dst", "size", "median", "p90"],
    );
    for (dst, label) in MEMGESTS {
        // Source is the unreliable memgest unless it IS the destination,
        // in which case REP3 is the source (the source scheme does not
        // influence the latency — Section 6.2).
        let src = if label == "REP1" {
            memgest_id("REP3")
        } else {
            memgest_id("REP1")
        };
        for size in object_sizes() {
            let s = move_latency(&mut client, src, dst, size, n, key_base);
            key_base += n as u64;
            println!("{label}\t{size}\t{}\t{}", us(s.median_us), us(s.p90_us));
            rows.push(Row {
                dst: label.to_string(),
                size,
                mv: s,
            });
        }
    }
    write_json("fig8_move", &rows);
    cluster.shutdown();
}
