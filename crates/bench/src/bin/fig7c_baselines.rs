//! Figure 7c: put and get latency of the baseline system models
//! (memcached, Dare, RAMCloud, Cocytus — see `ring_kvs::baseline` for
//! the substitution rationale).
//!
//! Expected shape (Section 6.1): memcached ~10x slower than Ring's REP1
//! (kernel TCP); Dare comparable to REP3 (same transport, same
//! replication); RAMCloud's put well above Dare's (disk-backed
//! backups) with gets as fast as Ring's; Cocytus get/put far above
//! Ring's SRS32.

use ring_bench::measure::{get_latency, put_latency, LatencySummary};
use ring_bench::output::{header, us, write_json};
use ring_bench::{object_sizes, reps};
use ring_kvs::baseline::all_baselines;
use ring_kvs::Cluster;

#[derive(serde::Serialize)]
struct Row {
    system: String,
    size: usize,
    put: LatencySummary,
    get: LatencySummary,
}

fn main() {
    let n = reps(500, 30);
    let mut rows = Vec::new();
    header(
        "Figure 7c: baseline put/get latency (us, median)",
        &["system", "size", "put_med", "put_p90", "get_med", "get_p90"],
    );
    for b in all_baselines() {
        let cluster = Cluster::start(b.spec.clone());
        let mut client = cluster.client();
        let mut key_base = 0u64;
        for size in object_sizes() {
            let put = put_latency(&mut client, b.memgest, size, n, key_base);
            let keys: Vec<u64> = (key_base..key_base + n as u64).collect();
            let get = get_latency(&mut client, &keys, n);
            key_base += n as u64;
            println!(
                "{}\t{size}\t{}\t{}\t{}\t{}",
                b.name,
                us(put.median_us),
                us(put.p90_us),
                us(get.median_us),
                us(get.p90_us)
            );
            rows.push(Row {
                system: b.name.to_string(),
                size,
                put,
                get,
            });
        }
        cluster.shutdown();
    }
    write_json("fig7c_baselines", &rows);
}
