//! Figure 16: annual interval availability (in nines) of SRS codes.
//!
//! Expected shape (Appendix A.3): every scheme sits below ~3.4 nines;
//! more nodes in the stripe decreases availability; the SRS(2,1,s)
//! family is the most available.

use ring_bench::output::{header, write_json};
use ring_reliability::{nines, srs_chain, ModelParams};

#[derive(serde::Serialize)]
struct Row {
    k: usize,
    m: usize,
    s: usize,
    availability: f64,
    nines: f64,
}

fn main() {
    let params = ModelParams::default();
    let mut rows = Vec::new();
    header(
        "Figure 16: interval availability of SRS(k,m,s) (annual, nines)",
        &["code", "s", "availability", "nines"],
    );
    for k in 2..=5usize {
        for m in 1..k {
            for s in k..=8usize {
                let chain = srs_chain(k, m, s, &params);
                let a = chain.annual_availability();
                let n = nines(a);
                println!("RS({k},{m})\t{s}\t{a:.7}\t{n:.2}");
                rows.push(Row {
                    k,
                    m,
                    s,
                    availability: a,
                    nines: n,
                });
            }
        }
    }

    let max = rows.iter().map(|r| r.nines).fold(0.0, f64::max);
    let best = rows
        .iter()
        .filter(|r| (r.k, r.m) == (2, 1))
        .map(|r| r.nines)
        .fold(0.0, f64::max);
    println!("\nmax availability = {max:.2} nines (paper: < 3.4), SRS(2,1,s) best = {best:.2} (paper: ~3.35, maximal)");

    write_json("fig16_availability", &rows);
}
