//! Trace-driven replay: runs synthetic SPC traces (Financial1 and
//! WebSearch2 profiles) against live clusters configured as the hot
//! (Rep(3)), cold (SRS(3,2)) and simple (Rep(1)) schemes of Figure 10,
//! reporting achieved latency and throughput per scheme — the
//! performance side of the cost story the paper prices.
//!
//! LBAs are mapped to KV keys at 4 KiB granularity; reads of unwritten
//! blocks count as misses and are skipped (the cost model already
//! accounts for them).

use std::collections::HashSet;
use std::time::Instant;

use ring_bench::output::{header, kreq, write_json};
use ring_bench::quick_mode;
use ring_kvs::{Cluster, ClusterSpec, MemgestDescriptor};
use ring_workload::spc::{synthesize, trace_by_name};

#[derive(serde::Serialize)]
struct Row {
    trace: String,
    scheme: String,
    ops_replayed: usize,
    req_per_sec: f64,
    mean_put_us: f64,
    mean_get_us: f64,
}

const BLOCK: u64 = 4096 / 512; // Trace LBAs are 512-byte sectors.

fn main() {
    let n_records = if quick_mode() { 2_000 } else { 20_000 };
    let schemes: [(&str, MemgestDescriptor); 3] = [
        ("hot/Rep(3)", MemgestDescriptor::rep(3)),
        ("cold/SRS(3,2)", MemgestDescriptor::srs(3, 2)),
        ("simple/Rep(1)", MemgestDescriptor::rep(1)),
    ];
    let mut rows = Vec::new();
    header(
        "SPC trace replay against live clusters",
        &["trace", "scheme", "ops", "req/s", "put_us", "get_us"],
    );
    for trace_name in ["Financial1", "WebSearch2"] {
        let profile = trace_by_name(trace_name).expect("known trace");
        let records = synthesize(profile, n_records, 11);
        for (label, desc) in schemes {
            let cluster = Cluster::start(ClusterSpec {
                memgests: vec![desc],
                ..ClusterSpec::default()
            });
            let mut client = cluster.client();
            let mut written: HashSet<u64> = HashSet::new();
            // Preload every block the trace will read, so replayed reads
            // hit the store (the replay measures service latency, not
            // cold-cache misses).
            for r in &records {
                if !r.is_read {
                    continue;
                }
                let first = r.lba / BLOCK;
                let last = (r.lba + (r.size as u64 / 512).max(1) - 1) / BLOCK;
                for block in first..=last {
                    let key = (r.asu as u64) << 48 | block;
                    if written.insert(key) {
                        client.put_to(key, &[0x11u8; 4096], 0).expect("preload");
                    }
                }
            }
            let mut put_time = 0.0f64;
            let mut get_time = 0.0f64;
            let mut puts = 0usize;
            let mut gets = 0usize;
            let t0 = Instant::now();
            for r in &records {
                let first = r.lba / BLOCK;
                let last = (r.lba + (r.size as u64 / 512).max(1) - 1) / BLOCK;
                for block in first..=last {
                    let key = (r.asu as u64) << 48 | block;
                    if r.is_read {
                        if written.contains(&key) {
                            let s = Instant::now();
                            client.get(key).expect("replay get");
                            get_time += s.elapsed().as_secs_f64();
                            gets += 1;
                        }
                    } else {
                        let s = Instant::now();
                        client.put_to(key, &[0xA5u8; 4096], 0).expect("replay put");
                        put_time += s.elapsed().as_secs_f64();
                        puts += 1;
                        written.insert(key);
                    }
                }
            }
            let total = puts + gets;
            let rate = total as f64 / t0.elapsed().as_secs_f64();
            println!(
                "{trace_name}\t{label}\t{total}\t{}\t{:.1}\t{:.1}",
                kreq(rate),
                if puts > 0 {
                    put_time / puts as f64 * 1e6
                } else {
                    0.0
                },
                if gets > 0 {
                    get_time / gets as f64 * 1e6
                } else {
                    0.0
                },
            );
            rows.push(Row {
                trace: trace_name.to_string(),
                scheme: label.to_string(),
                ops_replayed: total,
                req_per_sec: rate,
                mean_put_us: if puts > 0 {
                    put_time / puts as f64 * 1e6
                } else {
                    0.0
                },
                mean_get_us: if gets > 0 {
                    get_time / gets as f64 * 1e6
                } else {
                    0.0
                },
            });
            cluster.shutdown();
        }
    }
    write_json("spc_replay", &rows);
    println!(
        "\nShape: the put-heavy Financial1 trace pays the redundancy cost\n(simple > hot > cold in throughput); the get-dominant WebSearch trace\nis scheme-insensitive — the performance face of Figure 10's prices."
    );
}
