//! Figure 2: annual reliability (in nines) of stretched Reed-Solomon
//! codes, `RS(k, m)` for `k = 2..7`, `m < k`, stretched over
//! `s = k..8` nodes.
//!
//! Expected shape: each `RS(k, m)` family forms a near-vertical line —
//! stretching keeps reliability approximately constant, sometimes
//! slightly improving it (faster per-node recovery, extra tolerable
//! patterns); more parity moves families right by several nines.

use ring_bench::output::{header, write_json};
use ring_reliability::{nines, srs_chain, ModelParams};

#[derive(serde::Serialize)]
struct Row {
    k: usize,
    m: usize,
    s: usize,
    reliability: f64,
    nines: f64,
}

fn main() {
    let params = ModelParams::default();
    let mut rows = Vec::new();
    header(
        "Figure 2: reliability of SRS(k,m,s) (annual, in nines)",
        &["code", "s", "reliability", "nines"],
    );
    for k in 2..=7usize {
        for m in 1..k {
            for s in k..=8usize {
                let chain = srs_chain(k, m, s, &params);
                let r = chain.annual_reliability();
                let n = nines(r);
                println!("RS({k},{m})\t{s}\t{r:.9}\t{n:.2}");
                rows.push(Row {
                    k,
                    m,
                    s,
                    reliability: r,
                    nines: n,
                });
            }
        }
    }

    // The paper's spot checks.
    let band = |k: usize, m: usize| -> (f64, f64) {
        let vals: Vec<f64> = (k..=8)
            .map(|s| nines(srs_chain(k, m, s, &params).annual_reliability()))
            .collect();
        (
            vals.iter().copied().fold(f64::INFINITY, f64::min),
            vals.iter().copied().fold(0.0, f64::max),
        )
    };
    let (lo, hi) = band(3, 1);
    println!("\nSRS(3,1,s) family spans {lo:.2}..{hi:.2} nines (paper: ~3.5 for all s)");
    let rs32 = nines(srs_chain(3, 2, 3, &params).annual_reliability());
    let srs326 = nines(srs_chain(3, 2, 6, &params).annual_reliability());
    println!(
        "SRS(3,2,6) = {srs326:.2} nines vs RS(3,2) = {rs32:.2} (paper: stretched is more reliable)"
    );

    write_json("fig2_reliability", &rows);
}
