//! Performance baseline harness: GF kernel throughput plus end-to-end
//! put/get latency and pipelined put throughput per scheme.
//!
//! Writes `BENCH_ring.json` at the repo root (committed, so regressions
//! are visible in review) and can audit a fresh run against a committed
//! baseline:
//!
//! ```text
//! bench [--smoke] [--out <path>] [--check <path>]
//! ```
//!
//! - `--smoke`: few iterations; numbers are noisy but the file is
//!   produced quickly (the CI smoke job).
//! - `--out <path>`: where to write the JSON (default
//!   `<repo>/BENCH_ring.json`).
//! - `--check <path>`: compare this run's GF kernel throughput against
//!   a previously committed baseline file; exits non-zero if any kernel
//!   regressed by more than 3x (a guard against accidentally reverting
//!   to byte-at-a-time loops, loose enough for shared-runner noise).
//!   Also guards this run's own `tail_latency` section: the rows must
//!   exist and p999 at Δ=1 must not exceed p999 at Δ=0.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ring_bench::hist::LatencyHistogram;
use ring_bench::measure::{get_latency, move_latency, put_latency};
use ring_bench::output::results_dir;
use ring_bench::workbench::{memgest_id, paper_cluster};
use ring_chaos::{StragglerProfile, StragglerSpec};
use ring_gf::{region, Gf256};
use ring_kvs::{Cluster, ClusterSpec};
use ring_server::harness::{find_binary, LoopbackCluster, LoopbackSpec};
use serde::Serialize;

/// Maximum tolerated slowdown vs the committed baseline before
/// `--check` fails the run.
const MAX_REGRESSION: f64 = 3.0;

#[derive(Serialize)]
struct GfRow {
    op: &'static str,
    len: usize,
    mbps: f64,
}

#[derive(Serialize)]
struct E2eRow {
    scheme: String,
    value_len: usize,
    put_p50_us: f64,
    get_p50_us: f64,
    /// Single pipelined client, window 64, closed loop.
    put_throughput_rps: f64,
}

#[derive(Serialize)]
struct TcpRow {
    scheme: String,
    value_len: usize,
    put_p50_us: f64,
    put_p99_us: f64,
    get_p50_us: f64,
    get_p99_us: f64,
    move_p50_us: f64,
    move_p99_us: f64,
}

/// One tail-latency measurement: degraded SRS(3,2) gets after a
/// coordinator failure, with a pinned straggler on the first-choice
/// parity node and the speculative read fan-out at `k + delta`.
#[derive(Serialize)]
struct TailRow {
    op: &'static str,
    /// The Δ of the `k + Δ` fan-out this row ran with.
    delta: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    samples: u64,
}

#[derive(Serialize)]
struct Report {
    schema: u32,
    /// Master seed of the benchmark cluster (echoed for replayability).
    seed: u64,
    smoke: bool,
    gf: Vec<GfRow>,
    e2e: Vec<E2eRow>,
    /// Degraded-read tail latency at Δ ∈ {0, 1, 2}: the late-binding
    /// `k + Δ` fan-out must collapse the p999 a straggling redundancy
    /// target would otherwise impose on every unlucky read.
    tail_latency: Vec<TailRow>,
    /// Same protocol over real OS processes and loopback TCP (the
    /// `ring-server` deployment path). Empty when the server binaries
    /// were not built alongside the bench.
    tcp_loopback: Vec<TcpRow>,
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// MB/s of `f` run repeatedly over `len`-byte regions for ~`budget`.
fn gf_mbps(len: usize, budget: Duration, mut f: impl FnMut(&mut [u8], &[u8])) -> f64 {
    let src = vec![0x5Au8; len];
    let mut dst = vec![0xA5u8; len];
    // Warm up, then time whole passes until the budget is spent.
    f(&mut dst, &src);
    let t0 = Instant::now();
    let mut bytes = 0u64;
    while t0.elapsed() < budget {
        for _ in 0..8 {
            f(&mut dst, &src);
            bytes += len as u64;
        }
    }
    bytes as f64 / t0.elapsed().as_secs_f64() / 1e6
}

fn run_gf(smoke: bool) -> Vec<GfRow> {
    let budget = if smoke {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(200)
    };
    let c = Gf256(0x53);
    let mut rows = Vec::new();
    // 64 B sits at the SWAR threshold; 4 KiB and 64 KiB are firmly in
    // word-wide territory (parity blocks, recovery transfers).
    for len in [64usize, 4096, 65536] {
        rows.push(GfRow {
            op: "xor_into",
            len,
            mbps: gf_mbps(len, budget, region::xor_into),
        });
        rows.push(GfRow {
            op: "mul_acc",
            len,
            mbps: gf_mbps(len, budget, |d, s| region::mul_acc(d, s, c)),
        });
        rows.push(GfRow {
            op: "mul_into",
            len,
            mbps: gf_mbps(len, budget, |d, s| region::mul_into(d, s, c)),
        });
        rows.push(GfRow {
            op: "mul_in_place",
            len,
            mbps: gf_mbps(len, budget, |d, _| region::mul_in_place(d, c)),
        });
    }
    rows
}

fn run_e2e(smoke: bool) -> (u64, Vec<E2eRow>) {
    let reps = if smoke { 40 } else { 400 };
    let throughput_budget = if smoke {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(1000)
    };
    let value_len = 1024usize;
    let cluster = paper_cluster();
    let seed = 0x52_49_4E_47; // ClusterSpec::default().seed ("RING").
    let mut rows = Vec::new();
    for scheme in ["REP1", "REP3", "SRS32"] {
        let memgest = memgest_id(scheme);
        let mut client = cluster.client();
        let key_base = u64::from(memgest) * 1_000_000;
        let put = put_latency(&mut client, memgest, value_len, reps, key_base);
        let keys: Vec<u64> = (0..reps as u64).map(|i| key_base + i).collect();
        let get = get_latency(&mut client, &keys, reps);

        // Closed-loop pipelined put throughput: one client, window 64.
        client.set_window(64);
        client.set_timeout(Duration::from_secs(2));
        let mut key = key_base + 10_000_000;
        let t0 = Instant::now();
        let mut done = 0u64;
        let value = vec![0xCDu8; value_len];
        while t0.elapsed() < throughput_budget {
            client
                .put_nb(key, &value, Some(memgest))
                .expect("pipelined put");
            key += 1;
            done += client.poll().len() as u64;
        }
        done += client.drain().len() as u64;
        let rps = done as f64 / t0.elapsed().as_secs_f64();

        println!(
            "{scheme:>6}  put p50 {:8.1}us  get p50 {:8.1}us  pipelined put {:9.0} req/s",
            put.median_us, get.median_us, rps
        );
        rows.push(E2eRow {
            scheme: scheme.to_string(),
            value_len,
            put_p50_us: put.median_us,
            get_p50_us: get.median_us,
            put_throughput_rps: rps,
        });
    }
    cluster.shutdown();
    (seed, rows)
}

/// Degraded-read tail latency vs the speculative fan-out Δ.
///
/// For each Δ ∈ {0, 1, 2}: boot the paper cluster with one spare and
/// `read_fanout_extra = Δ`, preload SRS(3,2) keys, kill coordinator 0
/// and wait for the spare's (metadata-only) promotion, then pin a
/// seeded straggler on parity node 3 — the *first-choice* redundancy
/// target of the rotation — and time one degraded get per surviving
/// victim key into an HDR histogram. With Δ = 0 every decode must hear
/// from the straggler; with Δ >= 1 the fan-out also contacts parity 4
/// and the decode binds to the first `k` rows, so the straggle drops
/// out of the tail.
fn run_tail_latency(smoke: bool) -> Vec<TailRow> {
    let keys_total = if smoke { 900u64 } else { 4500 };
    let straggle = StragglerSpec {
        slow_nodes: 1,
        slow_prob: 0.4,
        min_extra: Duration::from_millis(2),
        max_extra: Duration::from_millis(8),
    };
    let mut rows = Vec::new();
    for delta in [0usize, 1, 2] {
        let cluster = Cluster::start(ClusterSpec {
            spares: 1,
            read_fanout_extra: delta,
            // Generous client timeout: a straggled decode must be
            // measured as latency, not amplified into retry traffic.
            client_timeout: Duration::from_secs(2),
            ..ClusterSpec::paper_evaluation()
        });
        let seed = cluster.spec().derived_seed("bench-tail-straggler");
        let mut client = cluster.client();
        let value = vec![0xEEu8; 1024];
        let mut victims = Vec::new();
        for key in 0..keys_total {
            client
                .put_to(key, &value, memgest_id("SRS32"))
                .expect("preload");
            if cluster.coordinator_of(key) == 0 {
                victims.push(key);
            }
        }

        // Kill the coordinator and wait out the spare promotion on a
        // sacrificial probe key, so the measured gets see a promoted
        // coordinator with data holes rather than failover noise.
        cluster.kill(0);
        let probe = victims.remove(0);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match client.get(probe) {
                Ok(_) => break,
                Err(e) if Instant::now() >= deadline => {
                    panic!("tail_latency: promotion never completed: {e:?}")
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }

        // Straggle the first-choice parity only; decisions are seeded,
        // so each Δ faces the identical slow-node schedule.
        let prof = StragglerProfile::pinned(seed, straggle, BTreeSet::from([3u32]), None);
        cluster.fabric().set_fault_injector(Arc::new(prof));

        let mut hist = LatencyHistogram::new();
        for key in victims {
            let t0 = Instant::now();
            loop {
                match client.get(key) {
                    Ok(_) => break,
                    Err(e) if Instant::now() > t0 + Duration::from_secs(30) => {
                        panic!("tail_latency: degraded get stuck at Δ={delta}: {e:?}")
                    }
                    Err(_) => {}
                }
            }
            hist.record(t0.elapsed());
        }
        let t = hist.tail_summary();
        println!(
            "  Δ={delta}  degraded get p50 {:8.1}us  p99 {:8.1}us  p999 {:8.1}us  ({} samples)",
            t.p50_us, t.p99_us, t.p999_us, t.samples
        );
        rows.push(TailRow {
            op: "get_degraded_srs32",
            delta,
            p50_us: t.p50_us,
            p99_us: t.p99_us,
            p999_us: t.p999_us,
            samples: t.samples,
        });
        cluster.shutdown();
    }
    rows
}

/// End-to-end latency over real `ring-server` processes on loopback
/// TCP: the same put/get/move measurements as the simulated-fabric
/// section, so the two transports sit side by side in the report.
///
/// Skips (returning an empty vec) when the server binaries are not
/// next to the bench executable — `cargo run --bin bench` does not
/// build them; `cargo build --release -p ring-server` first, or let CI
/// do it.
fn run_tcp_loopback(smoke: bool) -> Vec<TcpRow> {
    if find_binary("ring-server").is_none() || find_binary("ring-cli").is_none() {
        println!(
            "tcp_loopback: skipped (ring-server / ring-cli binaries not found; \
             build them with `cargo build -p ring-server`)"
        );
        return Vec::new();
    }
    let reps = if smoke { 20 } else { 200 };
    let value_len = 1024usize;
    let cluster = match LoopbackCluster::start(LoopbackSpec::default()) {
        Ok(c) => c,
        Err(e) => {
            println!("tcp_loopback: skipped (cluster failed to boot: {e})");
            return Vec::new();
        }
    };
    let mut client = cluster.client();

    // Warm up: the processes are accepting but the leader may still be
    // assembling the first epoch; retry one throwaway put until it
    // lands instead of folding startup noise into the samples.
    let warm_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.put_to(u64::MAX, &[0u8; 8], 0) {
            Ok(_) => break,
            Err(e) if Instant::now() >= warm_deadline => {
                println!("tcp_loopback: skipped (cluster never became ready: {e:?})");
                return Vec::new();
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }

    // Memgest 0 is REP(2), memgest 1 is SRS(2,1) in the default spec.
    let mut rows = Vec::new();
    for (scheme, memgest, other) in [("REP2", 0u32, 1u32), ("SRS21", 1, 0)] {
        let key_base = u64::from(memgest + 1) * 1_000_000;
        let put = put_latency(&mut client, memgest, value_len, reps, key_base);
        let keys: Vec<u64> = (0..reps as u64).map(|i| key_base + i).collect();
        let get = get_latency(&mut client, &keys, reps);
        let mv = move_latency(
            &mut client,
            memgest,
            other,
            value_len,
            reps,
            key_base + 10_000_000,
        );
        println!(
            "{scheme:>6} (tcp)  put p50 {:8.1}us p99 {:8.1}us  get p50 {:8.1}us p99 {:8.1}us  \
             move p50 {:8.1}us p99 {:8.1}us",
            put.median_us, put.p99_us, get.median_us, get.p99_us, mv.median_us, mv.p99_us
        );
        rows.push(TcpRow {
            scheme: scheme.to_string(),
            value_len,
            put_p50_us: put.median_us,
            put_p99_us: put.p99_us,
            get_p50_us: get.median_us,
            get_p99_us: get.p99_us,
            move_p50_us: mv.median_us,
            move_p99_us: mv.p99_us,
        });
    }
    drop(client);
    cluster.shutdown();
    rows
}

/// Guards the tail-latency section: the rows must exist and the
/// speculative fan-out must actually have bought its win — p999 at
/// Δ = 1 may not exceed p999 at Δ = 0, where a pinned straggler sat on
/// the only contacted parity.
fn check_tail(rows: &[TailRow]) -> Vec<String> {
    let p999 = |d: usize| rows.iter().find(|r| r.delta == d).map(|r| r.p999_us);
    match (p999(0), p999(1)) {
        (Some(d0), Some(d1)) if d1 <= d0 => Vec::new(),
        (Some(d0), Some(d1)) => vec![format!(
            "tail_latency: p999 at Δ=1 ({d1:.0}us) exceeds Δ=0 ({d0:.0}us) — \
             the speculative fan-out lost its late-binding win"
        )],
        _ => vec!["tail_latency rows for Δ=0 / Δ=1 missing".to_string()],
    }
}

/// Compares GF throughput against a baseline report, returning the
/// regressions worse than [`MAX_REGRESSION`].
fn check_against(baseline: &serde_json::Value, current: &[GfRow]) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(rows) = baseline.get("gf").and_then(|g| g.as_array()) else {
        return vec!["baseline file has no `gf` section".to_string()];
    };
    for row in rows {
        let (Some(op), Some(len), Some(base_mbps)) = (
            row.get("op").and_then(|v| v.as_str()),
            row.get("len").and_then(|v| v.as_u64()),
            row.get("mbps").and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        let Some(cur) = current.iter().find(|r| r.op == op && r.len == len as usize) else {
            problems.push(format!("kernel {op}/{len} missing from this run"));
            continue;
        };
        if base_mbps > 0.0 && cur.mbps * MAX_REGRESSION < base_mbps {
            problems.push(format!(
                "{op}/{len}: {:.0} MB/s vs baseline {:.0} MB/s (> {MAX_REGRESSION}x regression)",
                cur.mbps, base_mbps
            ));
        }
    }
    problems
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out = arg_value("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            results_dir()
                .parent()
                .map(|p| p.join("BENCH_ring.json"))
                .expect("repo root")
        });

    println!(
        "GF kernel throughput ({}):",
        if smoke { "smoke" } else { "full" }
    );
    let gf = run_gf(smoke);
    for r in &gf {
        println!("  {:>12} len {:>6}: {:9.0} MB/s", r.op, r.len, r.mbps);
    }
    let (seed, e2e) = run_e2e(smoke);
    println!("Degraded-read tail latency (straggling parity, k+Δ fan-out):");
    let tail_latency = run_tail_latency(smoke);
    println!("TCP loopback (real ring-server processes):");
    let tcp_loopback = run_tcp_loopback(smoke);

    let report = Report {
        schema: 1,
        seed,
        smoke,
        gf,
        e2e,
        tail_latency,
        tcp_loopback,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").expect("write BENCH_ring.json");
    println!("wrote {}", out.display());

    if let Some(path) = arg_value("--check") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: serde_json::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad baseline JSON: {e}"));
        let mut problems = check_against(&baseline, &report.gf);
        problems.extend(check_tail(&report.tail_latency));
        if problems.is_empty() {
            println!("check vs {path}: ok");
        } else {
            eprintln!("GF kernel regression check failed:");
            for p in &problems {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        }
    }
}
