//! Performance baseline harness: GF kernel throughput plus end-to-end
//! put/get latency and pipelined put throughput per scheme.
//!
//! Writes `BENCH_ring.json` at the repo root (committed, so regressions
//! are visible in review) and can audit a fresh run against a committed
//! baseline:
//!
//! ```text
//! bench [--smoke] [--out <path>] [--check <path>]
//! ```
//!
//! - `--smoke`: few iterations; numbers are noisy but the file is
//!   produced quickly (the CI smoke job).
//! - `--out <path>`: where to write the JSON (default
//!   `<repo>/BENCH_ring.json`).
//! - `--check <path>`: compare this run's GF kernel throughput against
//!   a previously committed baseline file; exits non-zero if any kernel
//!   regressed by more than 3x (a guard against accidentally reverting
//!   to byte-at-a-time loops, loose enough for shared-runner noise).

use std::time::{Duration, Instant};

use ring_bench::measure::{get_latency, move_latency, put_latency};
use ring_bench::output::results_dir;
use ring_bench::workbench::{memgest_id, paper_cluster};
use ring_gf::{region, Gf256};
use ring_server::harness::{find_binary, LoopbackCluster, LoopbackSpec};
use serde::Serialize;

/// Maximum tolerated slowdown vs the committed baseline before
/// `--check` fails the run.
const MAX_REGRESSION: f64 = 3.0;

#[derive(Serialize)]
struct GfRow {
    op: &'static str,
    len: usize,
    mbps: f64,
}

#[derive(Serialize)]
struct E2eRow {
    scheme: String,
    value_len: usize,
    put_p50_us: f64,
    get_p50_us: f64,
    /// Single pipelined client, window 64, closed loop.
    put_throughput_rps: f64,
}

#[derive(Serialize)]
struct TcpRow {
    scheme: String,
    value_len: usize,
    put_p50_us: f64,
    get_p50_us: f64,
    move_p50_us: f64,
}

#[derive(Serialize)]
struct Report {
    schema: u32,
    /// Master seed of the benchmark cluster (echoed for replayability).
    seed: u64,
    smoke: bool,
    gf: Vec<GfRow>,
    e2e: Vec<E2eRow>,
    /// Same protocol over real OS processes and loopback TCP (the
    /// `ring-server` deployment path). Empty when the server binaries
    /// were not built alongside the bench.
    tcp_loopback: Vec<TcpRow>,
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// MB/s of `f` run repeatedly over `len`-byte regions for ~`budget`.
fn gf_mbps(len: usize, budget: Duration, mut f: impl FnMut(&mut [u8], &[u8])) -> f64 {
    let src = vec![0x5Au8; len];
    let mut dst = vec![0xA5u8; len];
    // Warm up, then time whole passes until the budget is spent.
    f(&mut dst, &src);
    let t0 = Instant::now();
    let mut bytes = 0u64;
    while t0.elapsed() < budget {
        for _ in 0..8 {
            f(&mut dst, &src);
            bytes += len as u64;
        }
    }
    bytes as f64 / t0.elapsed().as_secs_f64() / 1e6
}

fn run_gf(smoke: bool) -> Vec<GfRow> {
    let budget = if smoke {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(200)
    };
    let c = Gf256(0x53);
    let mut rows = Vec::new();
    // 64 B sits at the SWAR threshold; 4 KiB and 64 KiB are firmly in
    // word-wide territory (parity blocks, recovery transfers).
    for len in [64usize, 4096, 65536] {
        rows.push(GfRow {
            op: "xor_into",
            len,
            mbps: gf_mbps(len, budget, region::xor_into),
        });
        rows.push(GfRow {
            op: "mul_acc",
            len,
            mbps: gf_mbps(len, budget, |d, s| region::mul_acc(d, s, c)),
        });
        rows.push(GfRow {
            op: "mul_into",
            len,
            mbps: gf_mbps(len, budget, |d, s| region::mul_into(d, s, c)),
        });
        rows.push(GfRow {
            op: "mul_in_place",
            len,
            mbps: gf_mbps(len, budget, |d, _| region::mul_in_place(d, c)),
        });
    }
    rows
}

fn run_e2e(smoke: bool) -> (u64, Vec<E2eRow>) {
    let reps = if smoke { 40 } else { 400 };
    let throughput_budget = if smoke {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(1000)
    };
    let value_len = 1024usize;
    let cluster = paper_cluster();
    let seed = 0x52_49_4E_47; // ClusterSpec::default().seed ("RING").
    let mut rows = Vec::new();
    for scheme in ["REP1", "REP3", "SRS32"] {
        let memgest = memgest_id(scheme);
        let mut client = cluster.client();
        let key_base = u64::from(memgest) * 1_000_000;
        let put = put_latency(&mut client, memgest, value_len, reps, key_base);
        let keys: Vec<u64> = (0..reps as u64).map(|i| key_base + i).collect();
        let get = get_latency(&mut client, &keys, reps);

        // Closed-loop pipelined put throughput: one client, window 64.
        client.set_window(64);
        client.set_timeout(Duration::from_secs(2));
        let mut key = key_base + 10_000_000;
        let t0 = Instant::now();
        let mut done = 0u64;
        let value = vec![0xCDu8; value_len];
        while t0.elapsed() < throughput_budget {
            client
                .put_nb(key, &value, Some(memgest))
                .expect("pipelined put");
            key += 1;
            done += client.poll().len() as u64;
        }
        done += client.drain().len() as u64;
        let rps = done as f64 / t0.elapsed().as_secs_f64();

        println!(
            "{scheme:>6}  put p50 {:8.1}us  get p50 {:8.1}us  pipelined put {:9.0} req/s",
            put.median_us, get.median_us, rps
        );
        rows.push(E2eRow {
            scheme: scheme.to_string(),
            value_len,
            put_p50_us: put.median_us,
            get_p50_us: get.median_us,
            put_throughput_rps: rps,
        });
    }
    cluster.shutdown();
    (seed, rows)
}

/// End-to-end latency over real `ring-server` processes on loopback
/// TCP: the same put/get/move measurements as the simulated-fabric
/// section, so the two transports sit side by side in the report.
///
/// Skips (returning an empty vec) when the server binaries are not
/// next to the bench executable — `cargo run --bin bench` does not
/// build them; `cargo build --release -p ring-server` first, or let CI
/// do it.
fn run_tcp_loopback(smoke: bool) -> Vec<TcpRow> {
    if find_binary("ring-server").is_none() || find_binary("ring-cli").is_none() {
        println!(
            "tcp_loopback: skipped (ring-server / ring-cli binaries not found; \
             build them with `cargo build -p ring-server`)"
        );
        return Vec::new();
    }
    let reps = if smoke { 20 } else { 200 };
    let value_len = 1024usize;
    let cluster = match LoopbackCluster::start(LoopbackSpec::default()) {
        Ok(c) => c,
        Err(e) => {
            println!("tcp_loopback: skipped (cluster failed to boot: {e})");
            return Vec::new();
        }
    };
    let mut client = cluster.client();

    // Warm up: the processes are accepting but the leader may still be
    // assembling the first epoch; retry one throwaway put until it
    // lands instead of folding startup noise into the samples.
    let warm_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.put_to(u64::MAX, &[0u8; 8], 0) {
            Ok(_) => break,
            Err(e) if Instant::now() >= warm_deadline => {
                println!("tcp_loopback: skipped (cluster never became ready: {e:?})");
                return Vec::new();
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }

    // Memgest 0 is REP(2), memgest 1 is SRS(2,1) in the default spec.
    let mut rows = Vec::new();
    for (scheme, memgest, other) in [("REP2", 0u32, 1u32), ("SRS21", 1, 0)] {
        let key_base = u64::from(memgest + 1) * 1_000_000;
        let put = put_latency(&mut client, memgest, value_len, reps, key_base);
        let keys: Vec<u64> = (0..reps as u64).map(|i| key_base + i).collect();
        let get = get_latency(&mut client, &keys, reps);
        let mv = move_latency(
            &mut client,
            memgest,
            other,
            value_len,
            reps,
            key_base + 10_000_000,
        );
        println!(
            "{scheme:>6} (tcp)  put p50 {:8.1}us  get p50 {:8.1}us  move p50 {:8.1}us",
            put.median_us, get.median_us, mv.median_us
        );
        rows.push(TcpRow {
            scheme: scheme.to_string(),
            value_len,
            put_p50_us: put.median_us,
            get_p50_us: get.median_us,
            move_p50_us: mv.median_us,
        });
    }
    drop(client);
    cluster.shutdown();
    rows
}

/// Compares GF throughput against a baseline report, returning the
/// regressions worse than [`MAX_REGRESSION`].
fn check_against(baseline: &serde_json::Value, current: &[GfRow]) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(rows) = baseline.get("gf").and_then(|g| g.as_array()) else {
        return vec!["baseline file has no `gf` section".to_string()];
    };
    for row in rows {
        let (Some(op), Some(len), Some(base_mbps)) = (
            row.get("op").and_then(|v| v.as_str()),
            row.get("len").and_then(|v| v.as_u64()),
            row.get("mbps").and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        let Some(cur) = current.iter().find(|r| r.op == op && r.len == len as usize) else {
            problems.push(format!("kernel {op}/{len} missing from this run"));
            continue;
        };
        if base_mbps > 0.0 && cur.mbps * MAX_REGRESSION < base_mbps {
            problems.push(format!(
                "{op}/{len}: {:.0} MB/s vs baseline {:.0} MB/s (> {MAX_REGRESSION}x regression)",
                cur.mbps, base_mbps
            ));
        }
    }
    problems
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out = arg_value("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            results_dir()
                .parent()
                .map(|p| p.join("BENCH_ring.json"))
                .expect("repo root")
        });

    println!(
        "GF kernel throughput ({}):",
        if smoke { "smoke" } else { "full" }
    );
    let gf = run_gf(smoke);
    for r in &gf {
        println!("  {:>12} len {:>6}: {:9.0} MB/s", r.op, r.len, r.mbps);
    }
    let (seed, e2e) = run_e2e(smoke);
    println!("TCP loopback (real ring-server processes):");
    let tcp_loopback = run_tcp_loopback(smoke);

    let report = Report {
        schema: 1,
        seed,
        smoke,
        gf,
        e2e,
        tcp_loopback,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").expect("write BENCH_ring.json");
    println!("wrote {}", out.display());

    if let Some(path) = arg_value("--check") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: serde_json::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad baseline JSON: {e}"));
        let problems = check_against(&baseline, &report.gf);
        if problems.is_empty() {
            println!("check vs {path}: ok");
        } else {
            eprintln!("GF kernel regression check failed:");
            for p in &problems {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        }
    }
}
