//! Figure 13: on-the-fly block recovery latency vs recovered block
//! size, for SRS21, SRS31 and SRS32.
//!
//! Method (Section 6.4): store an object, kill its coordinator, wait
//! until the promoted spare finished *metadata* recovery (probed with a
//! warm-up key whose data lives in a replicated memgest), then measure
//! the first get of the victim object — which triggers the online
//! decode: the parity node collects `k` lane blocks from the survivors
//! and reconstructs the range.
//!
//! Expected shape: latency grows with block size; SRS21 recovers faster
//! than SRS31/SRS32 (2 blocks to collect instead of 3).

use std::time::{Duration, Instant};

use ring_bench::output::{header, us, write_json};
use ring_bench::reps;
use ring_kvs::{Cluster, ClusterSpec};

#[derive(serde::Serialize)]
struct Row {
    scheme: String,
    block: usize,
    median_us: f64,
    p90_us: f64,
    samples: usize,
}

fn main() {
    let n = reps(15, 3);
    let sizes: &[usize] = if ring_bench::quick_mode() {
        &[512, 4096]
    } else {
        &[
            512,
            1 << 10,
            2 << 10,
            4 << 10,
            8 << 10,
            16 << 10,
            32 << 10,
            64 << 10,
        ]
    };
    let schemes = [("SRS21", 4u32), ("SRS31", 5u32), ("SRS32", 6u32)];

    header(
        "Figure 13: block recovery latency vs recovered block size",
        &["scheme", "block", "median_us", "p90_us"],
    );
    let mut rows = Vec::new();
    for (label, mid) in schemes {
        for &size in sizes {
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let spec = ClusterSpec {
                    spares: 1,
                    fail_timeout: Duration::from_millis(250),
                    client_timeout: Duration::from_millis(50),
                    ..ClusterSpec::paper_evaluation()
                };
                let cluster = Cluster::start(spec);
                let mut client = cluster.client();
                // Victim object on node 0's shard in the SRS memgest,
                // plus a replicated warm-up key on the same shard.
                let victim = (0..200u64)
                    .find(|&k| cluster.coordinator_of(k) == 0)
                    .expect("key on node 0");
                let warmup = (victim + 1..victim + 500)
                    .find(|&k| cluster.coordinator_of(k) == 0)
                    .expect("second key on node 0");
                let value = vec![0x77u8; size];
                client.put_to(victim, &value, mid).expect("preload victim");
                client.put_to(warmup, b"w", 2).expect("preload warmup");

                cluster.kill(0);
                // Wait until metadata recovery is done (warm-up key
                // served from the replica path).
                let t0 = Instant::now();
                loop {
                    if client.get(warmup).is_ok() {
                        break;
                    }
                    assert!(
                        t0.elapsed() < Duration::from_secs(30),
                        "metadata recovery never finished"
                    );
                }
                // Now measure the decode itself.
                let t1 = Instant::now();
                let recovered = client.get(victim).expect("online decode");
                samples.push(t1.elapsed());
                assert_eq!(recovered, value, "decode must be correct");
                cluster.shutdown();
            }
            let s = ring_bench::measure::summarize(samples);
            println!("{label}\t{}B\t{}\t{}", size, us(s.median_us), us(s.p90_us));
            rows.push(Row {
                scheme: label.to_string(),
                block: size,
                median_us: s.median_us,
                p90_us: s.p90_us,
                samples: s.samples,
            });
        }
    }
    write_json("fig13_block_recovery", &rows);
}
