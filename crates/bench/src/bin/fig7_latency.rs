//! Figure 7a/7b: put latency of all seven memgests and the (shared)
//! get latency, vs object size (2^1 .. 2^11 bytes).
//!
//! Expected shape (Section 6.1): REP1 lowest (no replication, immediate
//! commit), REP2/REP3 above it (one quorum ack), REP4 above those (two
//! acks), SRS21/SRS31 near each other (one parity update each), SRS32
//! highest (two parity updates plus coding work); get latency identical
//! across memgests.

use ring_bench::measure::{get_latency, put_latency, LatencySummary};
use ring_bench::output::{header, us, write_json};
use ring_bench::workbench::{paper_cluster, MEMGESTS};
use ring_bench::{object_sizes, reps};

#[derive(serde::Serialize)]
struct Row {
    scheme: String,
    size: usize,
    put: LatencySummary,
}

#[derive(serde::Serialize)]
struct GetRow {
    size: usize,
    get: LatencySummary,
}

fn main() {
    let n = reps(1000, 50);
    let cluster = paper_cluster();
    let mut client = cluster.client();
    let mut rows = Vec::new();
    let mut get_rows = Vec::new();
    let mut key_base = 0u64;

    header(
        "Figure 7a/7b: put latency (us, median/p90) vs object size",
        &["scheme", "size", "median", "p90"],
    );
    for (mid, label) in MEMGESTS {
        for size in object_sizes() {
            let s = put_latency(&mut client, mid, size, n, key_base);
            key_base += n as u64;
            println!("{label}\t{size}\t{}\t{}", us(s.median_us), us(s.p90_us));
            rows.push(Row {
                scheme: label.to_string(),
                size,
                put: s,
            });
        }
    }

    header(
        "Figure 7b: get latency (identical across memgests)",
        &["size", "median", "p90"],
    );
    for size in object_sizes() {
        // Get latency is scheme-independent (Section 6.1); sample it
        // over keys spread across all memgests.
        let keys: Vec<u64> = (0..64u64).map(|i| key_base + i).collect();
        let value = vec![0x11u8; size];
        for (i, &k) in keys.iter().enumerate() {
            client
                .put_to(k, &value, MEMGESTS[i % 7].0)
                .expect("preload");
        }
        key_base += keys.len() as u64;
        let s = get_latency(&mut client, &keys, n);
        println!("{size}\t{}\t{}", us(s.median_us), us(s.p90_us));
        get_rows.push(GetRow { size, get: s });
    }

    write_json("fig7_put_latency", &rows);
    write_json("fig7_get_latency", &get_rows);
    cluster.shutdown();
}
