//! Figure 12: coordinator recovery latency vs recovered metadata size.
//!
//! Method (Section 6.4): kill a coordinator, let the leader promote a
//! spare, and measure from the kill to the first successfully served
//! request — the spare must recover *all* metadata of *all* memgests
//! before answering, or it could return stale data. The failure-
//! detection window (the leader's `fail_timeout`) is subtracted so the
//! number isolates the recovery work, like the paper's.
//!
//! Expected shape: latency grows with metadata size, with high variance
//! (the paper reports a complex multi-step sequence).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ring_bench::output::{header, us, write_json};
use ring_bench::reps;
use ring_kvs::proto::ClientResp;
use ring_kvs::{Cluster, ClusterSpec, RingClient};

#[derive(serde::Serialize)]
struct Row {
    metadata_bytes: usize,
    keys: usize,
    median_us: f64,
    p90_us: f64,
    samples: usize,
}

/// Approximate metadata bytes per key entry (see
/// `ring_kvs::storage::MetaTable::approx_bytes`).
const ENTRY_BYTES: usize = 36;

/// Loads `keys` round-robin over the reliable memgests with a bounded
/// pipeline of in-flight puts. The sequential version took one full
/// round-trip per key, which at the 2 MiB point (~60k keys, repeated
/// per sample round) overran the harness budget on a small machine.
fn preload(client: &mut RingClient, keys: usize) {
    const WINDOW: usize = 512;
    let mut inflight: HashMap<_, u64> = HashMap::new();
    let mut failed: Vec<u64> = Vec::new();
    let mut drain = |client: &mut RingClient, inflight: &mut HashMap<_, u64>, min: usize| {
        while inflight.len() > min {
            let got = client.poll_responses();
            if got.is_empty() {
                // Don't spin: on an oversubscribed host the server
                // threads need the cycles to answer.
                std::thread::sleep(Duration::from_micros(100));
                continue;
            }
            for (req, resp) in got {
                if let Some(k) = inflight.remove(&req) {
                    if !matches!(resp, ClientResp::PutOk { .. }) {
                        failed.push(k);
                    }
                }
            }
        }
    };
    for k in 0..keys as u64 {
        let mid = 1 + (k % 6) as u32; // Skip REP1: its data would be lost.
        drain(client, &mut inflight, WINDOW - 1);
        let req = client
            .put_async(k, &k.to_le_bytes(), Some(mid))
            .expect("preload send");
        inflight.insert(req, k);
    }
    drain(client, &mut inflight, 0);
    // Stragglers (e.g. a timed-out response) load synchronously.
    for k in failed {
        let mid = 1 + (k % 6) as u32;
        client.put_to(k, &k.to_le_bytes(), mid).expect("preload");
    }
}

fn main() {
    let n_base = reps(12, 3);
    let fail_timeout = Duration::from_millis(250);
    // The paper sweeps 88 KiB .. 2128 KiB of metadata.
    let metadata_sizes: &[usize] = if ring_bench::quick_mode() {
        &[88 << 10, 336 << 10]
    } else {
        &[
            88 << 10,
            96 << 10,
            112 << 10,
            144 << 10,
            208 << 10,
            336 << 10,
            592 << 10,
            1104 << 10,
            2128 << 10,
        ]
    };

    header(
        "Figure 12: coordinator recovery latency vs metadata size",
        &["metadata", "keys", "median_us", "p90_us"],
    );
    let mut rows = Vec::new();
    for &meta_bytes in metadata_sizes {
        let keys = meta_bytes / ENTRY_BYTES;
        // Adaptive repetitions: a 2 MiB round costs ~25x an 88 KiB one,
        // so spend the sample budget where rounds are cheap. The large
        // points keep at least 3 samples.
        let n = (n_base * metadata_sizes[0] / meta_bytes).clamp(3, n_base);
        let mut samples = Vec::with_capacity(n);
        let mut round = 0usize;
        while samples.len() < n && round < n * 4 {
            round += 1;
            let spec = ClusterSpec {
                spares: 1,
                fail_timeout,
                client_timeout: Duration::from_millis(30),
                ..ClusterSpec::paper_evaluation()
            };
            let cluster = Cluster::start(spec);
            let mut client = cluster.client();
            // Load keys round-robin over the reliable memgests so every
            // memgest holds metadata that must be recovered.
            preload(&mut client, keys);
            let victim = (0..keys as u64)
                .find(|&k| cluster.coordinator_of(k) == 0)
                .expect("some key lands on node 0");
            // A fine-grained prober: short attempts so the measurement
            // resolution is a few ms rather than the client timeout.
            let mut prober = cluster.client();
            prober.set_timeout(Duration::from_millis(3));
            let t0 = Instant::now();
            cluster.kill(0);
            // First successful answer marks the end of recovery.
            loop {
                if prober.get(victim).is_ok() {
                    break;
                }
                assert!(
                    t0.elapsed() < Duration::from_secs(30),
                    "recovery did not complete (round {round})"
                );
            }
            let total = t0.elapsed();
            cluster.shutdown();
            if total <= fail_timeout {
                // The leader promoted the spare before our kill (a
                // false-positive detection under CPU oversubscription);
                // the round did not measure recovery — redo it.
                continue;
            }
            samples.push(total - fail_timeout);
        }
        let s = ring_bench::measure::summarize(samples);
        println!(
            "{}KiB\t{keys}\t{}\t{}",
            meta_bytes >> 10,
            us(s.median_us),
            us(s.p90_us)
        );
        rows.push(Row {
            metadata_bytes: meta_bytes,
            keys,
            median_us: s.median_us,
            p90_us: s.p90_us,
            samples: s.samples,
        });
    }
    write_json("fig12_recovery", &rows);
}
