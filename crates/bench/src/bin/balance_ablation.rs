//! Section 5.4 ablation: memory and load balance with 1 memgest group
//! versus `s + d` rotated groups.
//!
//! Prints the analytical per-node storage weights (what Figure 3's
//! unfilled rectangles depict) and then measures actual per-node message
//! load under a mixed workload on real clusters with both settings.

use std::time::Duration;

use ring_bench::output::{header, write_json};
use ring_bench::quick_mode;
use ring_kvs::balance::{role_mix, storage_balance};
use ring_kvs::{Cluster, ClusterSpec, Scheme};
use ring_workload::{KeyDistribution, WorkloadGen, WorkloadSpec};

#[derive(serde::Serialize)]
struct Row {
    groups: usize,
    node: u32,
    storage_weight: f64,
    coordinated_shards: usize,
    redundancy_slots: usize,
    msgs_received: u64,
    measured_bytes: usize,
}

fn paper_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Rep { r: 1 },
        Scheme::Rep { r: 2 },
        Scheme::Rep { r: 3 },
        Scheme::Rep { r: 4 },
        Scheme::Srs { k: 2, m: 1 },
        Scheme::Srs { k: 3, m: 1 },
        Scheme::Srs { k: 3, m: 2 },
    ]
}

fn main() {
    let ops = if quick_mode() { 2_000 } else { 20_000 };
    let mut rows = Vec::new();
    header(
        "Section 5.4 ablation: per-node balance, 1 group vs s + d groups",
        &[
            "groups",
            "node",
            "storage_w",
            "coord",
            "redund",
            "msgs",
            "bytes",
        ],
    );
    for groups in [1usize, 5] {
        let spec = ClusterSpec {
            groups,
            ..ClusterSpec::paper_evaluation()
        };
        let cluster = Cluster::start(spec);
        let analytical = storage_balance(cluster.config(), &paper_schemes());

        // Drive a mixed workload and sample per-node message counts.
        let mut client = cluster.client();
        let mut gen = WorkloadGen::new(
            WorkloadSpec {
                key_count: 2_000,
                value_len: 512,
                get_ratio: 0.5,
                distribution: KeyDistribution::Uniform,
            },
            cluster.spec().derived_seed("balance_ablation"),
        );
        let value = vec![9u8; 512];
        for op in gen.batch(ops) {
            match op {
                ring_workload::Op::Get { key } => {
                    let _ = client.get(key);
                }
                ring_workload::Op::Put { key, .. } => {
                    let mid = (key % 7) as u32;
                    client.put_to(key, &value, mid).expect("put");
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));

        let mut measured = Vec::new();
        for (i, &node) in cluster.config().nodes.iter().enumerate() {
            let (coords, redundants) = role_mix(cluster.config(), node);
            let msgs = cluster
                .fabric()
                .stats_of(node)
                .map(|s| s.msgs_received)
                .unwrap_or(0);
            let stats = client.node_stats(node).expect("stats");
            let bytes = stats.data_bytes() + stats.redundancy_bytes();
            measured.push(bytes as f64);
            println!(
                "{groups}\t{node}\t{:.3}\t{coords}\t{redundants}\t{msgs}\t{bytes}",
                analytical.weights[i]
            );
            rows.push(Row {
                groups,
                node,
                storage_weight: analytical.weights[i],
                coordinated_shards: coords,
                redundancy_slots: redundants,
                msgs_received: msgs,
                measured_bytes: bytes,
            });
        }
        let max = measured.iter().copied().fold(0.0, f64::max);
        let min = measured.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "groups={groups}: analytical storage imbalance = {:.2}x, measured = {:.2}x",
            analytical.imbalance,
            if min > 0.0 { max / min } else { f64::INFINITY }
        );
        cluster.shutdown();
    }
    write_json("balance_ablation", &rows);
}
