//! Seeded chaos soak: YCSB-style ops against REP3 + SRS(3,2) under
//! message faults, transient partitions and crash-plus-promotion, with
//! the history checked for per-key linearizability afterwards.
//!
//! Environment knobs:
//! - `RING_CHAOS_SEED` (default 0x52494E47): master seed; every random
//!   choice in the run derives from it.
//! - `RING_CHAOS_OPS` (default 2500): scripted ops per client.
//! - `RING_CHAOS_CLIENTS` (default 4): concurrent clients.
//! - `RING_CHAOS_RUNS` (default 1): repeat the soak (same seed) to
//!   exercise many interleavings of one schedule.
//! - `RING_CHAOS_STRAGGLER` (default 0): set to 1 to layer the seeded
//!   slow-node straggler profile over the message faults.
//! - `RING_CHAOS_CONFORM` (default 0): set to 1 to additionally replay
//!   each history against the RingWriteSemantics abstract model
//!   (`ring-model` trace conformance — version numbers included).

use ring_bench::output::{header, write_json};
use ring_chaos::{run_soak, CheckOutcome, SoakConfig, StragglerSpec};
use ring_model::conform::{check_conformance, Conformance};

#[derive(serde::Serialize)]
struct Row {
    run: usize,
    seed: u64,
    schedule_digest: u64,
    ops: usize,
    timeouts: usize,
    failures: usize,
    partitions: usize,
    crashes: usize,
    msgs_decided: u64,
    msgs_dropped: u64,
    msgs_duplicated: u64,
    msgs_delayed: u64,
    straggles: u64,
    linearizable: bool,
    /// `None` when conformance replay was not requested.
    conformant: Option<bool>,
    wall_s: f64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        })
        .unwrap_or(default)
}

fn main() {
    let seed = env_u64("RING_CHAOS_SEED", 0x52_49_4E_47);
    let ops = env_u64("RING_CHAOS_OPS", 2500) as usize;
    let clients = env_u64("RING_CHAOS_CLIENTS", 4) as usize;
    let runs = env_u64("RING_CHAOS_RUNS", 1) as usize;
    let straggler = env_u64("RING_CHAOS_STRAGGLER", 0) != 0;
    let conform = env_u64("RING_CHAOS_CONFORM", 0) != 0;

    let mut cfg = SoakConfig::acceptance(seed);
    cfg.ops_per_client = ops;
    cfg.clients = clients;
    if straggler {
        cfg.straggler = Some(StragglerSpec::light());
    }

    header(
        if straggler {
            "Chaos soak: REP3 + SRS(3,2) under drop/dup/delay + partition + crash + straggler"
        } else {
            "Chaos soak: REP3 + SRS(3,2) under drop/dup/delay + partition + crash"
        },
        &["run", "ops", "timeouts", "dropped", "verdict", "wall"],
    );

    let mut rows = Vec::new();
    let mut all_ok = true;
    for run in 0..runs {
        let began = std::time::Instant::now();
        let report = run_soak(&cfg);
        let wall_s = began.elapsed().as_secs_f64();
        let verdict = match &report.checker {
            CheckOutcome::Ok { states, .. } => format!("linearizable ({states} states)"),
            CheckOutcome::Violation(v) => format!("VIOLATION on key {}", v.key),
            CheckOutcome::Inconclusive { keys, .. } => {
                format!("inconclusive on {} key(s)", keys.len())
            }
        };
        println!(
            "{run}\t{}\t{}\t{}\t{verdict}\t{wall_s:.1}s",
            report.ops, report.timeouts, report.message_faults.1
        );
        if let CheckOutcome::Violation(v) = &report.checker {
            println!("{v}");
        }
        all_ok &= report.passed();
        let conformant = conform.then(|| {
            let c = check_conformance(&report.history);
            println!("  model conformance: {c}");
            !matches!(c, Conformance::Violation { .. })
        });
        all_ok &= conformant.unwrap_or(true);
        rows.push(Row {
            run,
            seed: report.seed,
            schedule_digest: report.schedule_digest,
            ops: report.ops,
            timeouts: report.timeouts,
            failures: report.failures,
            partitions: report.partitions,
            crashes: report.crashes,
            msgs_decided: report.message_faults.0,
            msgs_dropped: report.message_faults.1,
            msgs_duplicated: report.message_faults.2,
            msgs_delayed: report.message_faults.3,
            straggles: report.straggles.1,
            linearizable: report.passed(),
            conformant,
            wall_s,
        });
    }

    println!(
        "\nseed {seed:#x}: {} run(s), schedule digest {:#018x}",
        rows.len(),
        rows[0].schedule_digest
    );
    write_json("chaos_soak", &rows);
    if !all_ok {
        println!(
            "RESULT: FAILED (non-linearizable history; replay with RING_CHAOS_SEED={seed:#x})"
        );
        std::process::exit(1);
    }
    println!("RESULT: PASSED");
}
