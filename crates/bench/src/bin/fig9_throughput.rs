//! Figure 9: aggregate put throughput over time as clients join
//! (one new client per interval, 1 KiB values), for REP1, REP3 and
//! SRS32, plus the baseline models as reference lines.
//!
//! Expected shape (Section 6.3): REP1 the highest; REP3 roughly 2x
//! slower; SRS32 roughly 4x slower; memcached/Cocytus below the
//! comparable Ring memgests. Absolute rates are scaled to the
//! simulated fabric — relative factors are what reproduces the figure.

use std::time::Duration;

use ring_bench::measure::{ramp_throughput, ThroughputSample};
use ring_bench::output::{header, kreq, write_json};
use ring_bench::workbench::{memgest_id, paper_cluster};
use ring_bench::{quick_mode, reps};
use ring_kvs::baseline::all_baselines;
use ring_kvs::Cluster;

#[derive(serde::Serialize)]
struct Series {
    system: String,
    samples: Vec<ThroughputSample>,
}

fn main() {
    let max_clients = reps(4, 2);
    let interval = if quick_mode() {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(1)
    };
    let offered = 400_000.0; // The paper's offered rate per client.
    let mut series = Vec::new();

    header(
        "Figure 9: put throughput (1 KiB values), client per interval",
        &["system", "second", "clients", "req/s"],
    );

    for label in ["REP1", "REP3", "SRS32"] {
        let cluster = paper_cluster();
        let samples = ramp_throughput(
            &cluster,
            memgest_id(label),
            1024,
            offered,
            max_clients,
            interval,
        );
        for s in &samples {
            println!(
                "{label}\t{:.1}\t{}\t{}",
                s.second,
                s.clients,
                kreq(s.completed_per_sec)
            );
        }
        series.push(Series {
            system: label.to_string(),
            samples,
        });
        cluster.shutdown();
    }

    for b in all_baselines() {
        let cluster = Cluster::start(b.spec.clone());
        let samples = ramp_throughput(&cluster, b.memgest, 1024, offered, max_clients, interval);
        for s in &samples {
            println!(
                "{}\t{:.1}\t{}\t{}",
                b.name,
                s.second,
                s.clients,
                kreq(s.completed_per_sec)
            );
        }
        series.push(Series {
            system: b.name.to_string(),
            samples,
        });
        cluster.shutdown();
    }

    // The paper's headline ratios.
    let peak = |name: &str| -> f64 {
        series
            .iter()
            .find(|s| s.system == name)
            .and_then(|s| {
                s.samples
                    .iter()
                    .map(|x| x.completed_per_sec)
                    .reduce(f64::max)
            })
            .unwrap_or(0.0)
    };
    println!(
        "\nREP1/REP3 = {:.1}x (paper: 2x), REP1/SRS32 = {:.1}x (paper: 4.3x)",
        peak("REP1") / peak("REP3").max(1.0),
        peak("REP1") / peak("SRS32").max(1.0)
    );

    write_json("fig9_throughput", &series);
}
