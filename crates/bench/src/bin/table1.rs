//! The Section 1 trade-off table: Simple (Rep(1)), Rep(3) and RS(3,2)
//! compared on reliability, put latency, put throughput and storage
//! cost, normalised to Simple.
//!
//! Paper values: Rep(3) = {2 failures, 2x latency, 0.5x throughput,
//! 3x storage}; RS(3,2) = {2 failures, 3.4x latency, 0.31x throughput,
//! 1.66x storage}.

use std::time::Duration;

use ring_bench::measure::{mixed_throughput, put_latency};
use ring_bench::output::{header, write_json};
use ring_bench::workbench::{memgest_id, paper_cluster};
use ring_bench::{quick_mode, reps};
use ring_reliability::{rs_chain, srs_chain, ModelParams};
use ring_workload::{KeyDistribution, WorkloadGen, WorkloadSpec};

#[derive(serde::Serialize)]
struct Row {
    scheme: String,
    failures_tolerated: usize,
    annual_reliability: f64,
    put_latency_rel: f64,
    put_throughput_rel: f64,
    storage_cost_rel: f64,
}

fn main() {
    let n = reps(1000, 50);
    let params = ModelParams::default();

    // Reliability: Rep(r) is the k=1 chain; failures tolerated from the
    // scheme definitions.
    let rel = |k: usize, m: usize, s: usize| srs_chain(k, m, s, &params).annual_reliability();
    let rep3_rel = rs_chain(1, 2, &params).annual_reliability();
    let rs32_rel = rel(3, 2, 3);

    // Latency (1 KiB puts, median).
    let cluster = paper_cluster();
    let mut client = cluster.client();
    let lat = |label: &str, client: &mut ring_kvs::RingClient, base: u64| {
        put_latency(client, memgest_id(label), 1024, n, base).median_us
    };
    let l_simple = lat("REP1", &mut client, 0);
    let l_rep3 = lat("REP3", &mut client, 1_000_000);
    let l_rs32 = lat("SRS32", &mut client, 2_000_000);

    // Throughput (put-only, closed loop).
    let dur = if quick_mode() {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let thr = |label: &str| {
        let spec = WorkloadSpec {
            key_count: 5_000,
            value_len: 1024,
            get_ratio: 0.0,
            distribution: KeyDistribution::Uniform,
        };
        let mut gen = WorkloadGen::new(spec, cluster.spec().derived_seed("table1"));
        mixed_throughput(&cluster, memgest_id(label), &mut gen, dur, 64)
    };
    let t_simple = thr("REP1");
    let t_rep3 = thr("REP3");
    let t_rs32 = thr("SRS32");

    let rows = vec![
        Row {
            scheme: "Simple".into(),
            failures_tolerated: 0,
            annual_reliability: 0.0,
            put_latency_rel: 1.0,
            put_throughput_rel: 1.0,
            storage_cost_rel: 1.0,
        },
        Row {
            scheme: "Rep(3)".into(),
            failures_tolerated: 2,
            annual_reliability: rep3_rel,
            put_latency_rel: l_rep3 / l_simple,
            put_throughput_rel: t_rep3 / t_simple,
            storage_cost_rel: 3.0,
        },
        Row {
            scheme: "RS(3,2)".into(),
            failures_tolerated: 2,
            annual_reliability: rs32_rel,
            put_latency_rel: l_rs32 / l_simple,
            put_throughput_rel: t_rs32 / t_simple,
            storage_cost_rel: 1.0 + 2.0 / 3.0,
        },
    ];

    header(
        "Table 1 (Section 1): scheme trade-offs, normalised to Simple",
        &["scheme", "reliability", "put_lat", "put_thru", "storage"],
    );
    for r in &rows {
        let reliability = if r.failures_tolerated == 0 {
            "None".to_string()
        } else {
            format!("{} failures", r.failures_tolerated)
        };
        println!(
            "{}\t{}\t{:.2}x\t{:.2}x\t{:.2}x",
            r.scheme, reliability, r.put_latency_rel, r.put_throughput_rel, r.storage_cost_rel
        );
    }
    println!("\npaper: Rep(3) = 2x / 0.5x / 3x; RS(3,2) = 3.4x / 0.31x / 1.66x");

    write_json("table1", &rows);
    cluster.shutdown();
}
