//! Figure 10: normalised storage price of five SPC traces under the
//! hot (Rep(3)), cold (SRS(3,2,3)) and simple (Rep(1)) schemes, using
//! Azure Blob pricing (Feb 2018).
//!
//! Expected shape: for the put-heavy Financial1 trace cold ≈ 5.5x
//! simple and ≈ 2x hot; the get-dominant WebSearch traces compress the
//! three schemes together.
//!
//! The real SPC traces are proprietary; the cost model consumes their
//! published aggregate statistics, and a synthetic-record cross-check
//! validates that generated traces reproduce those statistics (see
//! `ring_workload::spc`).

use ring_bench::output::{header, write_json};
use ring_workload::cost::{normalized_prices, CostBreakdown, SchemeClass};
use ring_workload::spc::{synthesize, TraceStats, TRACES};

#[derive(serde::Serialize)]
struct Row {
    trace: String,
    scheme: String,
    write: f64,
    read: f64,
    transfer: f64,
    storage: f64,
    relative_price: f64,
}

fn main() {
    let mut rows = Vec::new();
    header(
        "Figure 10: normalised storage price per trace and scheme",
        &["trace", "scheme", "write", "read", "xfer", "storage", "rel"],
    );
    for profile in &TRACES {
        let stats = TraceStats::from_profile(profile);
        for (class, b, rel) in normalized_prices(&stats) {
            print_row(profile.name, class, &b, rel);
            rows.push(Row {
                trace: profile.name.to_string(),
                scheme: class.label().to_string(),
                write: b.write,
                read: b.read,
                transfer: b.transfer,
                storage: b.storage,
                relative_price: rel,
            });
        }
    }

    // Cross-check: synthetic records must price within a few percent of
    // the exact profile statistics.
    println!("\nSynthetic-trace cross-check (relative price, hot scheme):");
    for profile in &TRACES {
        let exact = TraceStats::from_profile(profile);
        let sample_n = 200_000usize;
        let records = synthesize(profile, sample_n, 42);
        let mut sampled = TraceStats {
            footprint_gib: profile.footprint_gib,
            ..TraceStats::default()
        };
        for r in &records {
            sampled.add(r);
        }
        // Scale the sampled op counts up to the full trace size.
        let scale = profile.requests as f64 / sample_n as f64;
        sampled.reads = (sampled.reads as f64 * scale) as u64;
        sampled.writes = (sampled.writes as f64 * scale) as u64;
        sampled.read_bytes = (sampled.read_bytes as f64 * scale) as u64;
        sampled.write_bytes = (sampled.write_bytes as f64 * scale) as u64;
        sampled.duration_hours = profile.duration_hours;
        let e = rel_of(&exact, SchemeClass::Hot);
        let s = rel_of(&sampled, SchemeClass::Hot);
        println!("{}\texact={e:.2}\tsynthetic={s:.2}", profile.name);
    }

    write_json("fig10_pricing", &rows);
}

fn rel_of(stats: &TraceStats, class: SchemeClass) -> f64 {
    normalized_prices(stats)
        .into_iter()
        .find(|(c, _, _)| *c == class)
        .map(|(_, _, rel)| rel)
        .unwrap_or(0.0)
}

fn print_row(trace: &str, class: SchemeClass, b: &CostBreakdown, rel: f64) {
    println!(
        "{trace}\t{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{rel:.2}x",
        class.label(),
        b.write,
        b.read,
        b.transfer,
        b.storage
    );
}
