//! Benchmark harness regenerating every table and figure of the Ring
//! paper's evaluation (Section 6 and Appendix A).
//!
//! Each `src/bin/*.rs` binary reproduces one artefact:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | §1 trade-off table (Simple / Rep(3) / RS(3,2)) |
//! | `fig2_reliability` | Fig. 2 reliability of SRS codes |
//! | `fig7_latency` | Fig. 7a/b put + get latency vs object size |
//! | `fig7c_baselines` | Fig. 7c baseline latencies |
//! | `fig8_move` | Fig. 8 move latency vs object size |
//! | `fig9_throughput` | Fig. 9 put throughput, 1→4 clients |
//! | `fig10_pricing` | Fig. 10 storage pricing of five SPC traces |
//! | `fig11_mixes` | Fig. 11 throughput under get:put mixes |
//! | `fig12_recovery` | Fig. 12 coordinator recovery vs metadata size |
//! | `fig13_block_recovery` | Fig. 13 block recovery vs block size |
//! | `fig16_availability` | Fig. 16 availability of SRS codes |
//! | `all_experiments` | runs everything above |
//!
//! Results are printed as tables and also written as JSON rows under
//! `results/` so EXPERIMENTS.md can be regenerated. Pass `--quick` for a
//! fast smoke run with fewer repetitions.

pub mod hist;
pub mod measure;
pub mod output;
pub mod workbench;

/// Returns true if `--quick` is among the CLI arguments.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Repetition count: `full` normally, `quick` with `--quick`.
pub fn reps(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// The object sizes of Figures 7/8: 2^1 .. 2^11 bytes.
pub fn object_sizes() -> Vec<usize> {
    (1..=11).map(|p| 1usize << p).collect()
}
