//! Shared cluster setups for the figure binaries.

use ring_kvs::{Cluster, ClusterSpec};

/// The memgest ids of the paper's seven-scheme deployment
/// ([`ClusterSpec::paper_evaluation`]) with their figure labels.
pub const MEMGESTS: [(u32, &str); 7] = [
    (0, "REP1"),
    (1, "REP2"),
    (2, "REP3"),
    (3, "REP4"),
    (4, "SRS21"),
    (5, "SRS31"),
    (6, "SRS32"),
];

/// Memgest id by figure label.
///
/// # Panics
///
/// Panics on an unknown label.
pub fn memgest_id(label: &str) -> u32 {
    MEMGESTS
        .iter()
        .find(|(_, l)| *l == label)
        .map(|(id, _)| *id)
        .unwrap_or_else(|| panic!("unknown memgest label {label}"))
}

/// Starts the paper's 5-node, seven-memgest evaluation cluster over the
/// RDMA latency model.
pub fn paper_cluster() -> Cluster {
    Cluster::start(ClusterSpec::paper_evaluation())
}

/// Starts the paper cluster with `spares` spare nodes (failure
/// experiments).
pub fn paper_cluster_with_spares(spares: usize) -> Cluster {
    Cluster::start(ClusterSpec {
        spares,
        fail_timeout: std::time::Duration::from_millis(30),
        ..ClusterSpec::paper_evaluation()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve() {
        assert_eq!(memgest_id("REP1"), 0);
        assert_eq!(memgest_id("SRS32"), 6);
    }

    #[test]
    #[should_panic(expected = "unknown memgest")]
    fn unknown_label_panics() {
        memgest_id("NOPE");
    }
}
