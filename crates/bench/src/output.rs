//! Table printing and JSON result persistence.

use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment results are written (`<repo>/results`).
pub fn results_dir() -> PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes a serializable result set to `results/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(json.as_bytes());
            let _ = f.write_all(b"\n");
        }
    }
}

/// Prints a header line followed by a separator.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", columns.join("\t"));
    println!("{}", "-".repeat(columns.len() * 12));
}

/// Formats microseconds with two decimals.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a requests/second figure in thousands.
pub fn kreq(v: f64) -> String {
    format!("{:.0}K", v / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_points_at_repo_root() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(12.345), "12.35");
        assert_eq!(kreq(1_500_000.0), "1500K");
    }

    #[test]
    fn write_json_round_trips() {
        write_json("unit_test_row", &vec![1, 2, 3]);
        let path = results_dir().join("unit_test_row.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.trim(), "[\n  1,\n  2,\n  3\n]");
        let _ = std::fs::remove_file(path);
    }
}
