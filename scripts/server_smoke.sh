#!/usr/bin/env bash
# Boots a Ring cluster as real OS processes on loopback TCP and drives
# it with ring-cli: put/get/move, a stats probe, a hard node kill with
# spare promotion, then a graceful SIGTERM teardown that must leave one
# JSON stats line on every surviving server's stderr.
#
# Usage: scripts/server_smoke.sh [path-to-binaries]   (default target/release)
#
# Exits non-zero on any failure. Used by CI's `server-smoke` job; run
# it locally after `cargo build --release -p ring-server`.
set -euo pipefail

BIN=${1:-target/release}
WORK=$(mktemp -d)
cleanup() {
    # Reap whatever is still alive (only reached early on failure).
    kill -9 $(jobs -p) 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# A pid-derived port base keeps concurrent runs on one host apart.
BASE=$(( ($$ % 1000) + 4700 ))
CONF="$WORK/ring.conf"
cat > "$CONF" <<EOF
s = 2
d = 1
nodes = 0,1,2
spares = 3
peer.0 = 127.0.0.1:$BASE
peer.1 = 127.0.0.1:$((BASE + 1))
peer.2 = 127.0.0.1:$((BASE + 2))
peer.3 = 127.0.0.1:$((BASE + 3))
peer.10000 = 127.0.0.1:$((BASE + 4))
memgest = rep:2
memgest = srs:2,1
default_memgest = 0
EOF

declare -A PID_OF
"$BIN/ring-server" --config "$CONF" --leader 2> "$WORK/leader.err" &
PID_OF[leader]=$!
for id in 0 1 2 3; do
    "$BIN/ring-server" --config "$CONF" --node "$id" 2> "$WORK/node$id.err" &
    PID_OF[$id]=$!
done

cli() { "$BIN/ring-cli" --config "$CONF" "$@"; }

# The processes boot asynchronously; the first put doubles as the
# readiness probe.
for i in $(seq 1 100); do
    if cli put 1 hello > /dev/null 2>&1; then break; fi
    if [ "$i" = 100 ]; then echo "FAIL: cluster never became ready"; exit 1; fi
    sleep 0.1
done

[ "$(cli get 1)" = hello ]
cli put 2 world > /dev/null
cli move 2 1 > /dev/null                 # Rep(2) -> SRS(2,1)
[ "$(cli get 2)" = world ]
cli stats 0 | grep -q 'node=0'

# Hard-kill a coordinator; the leader must promote the spare and reads
# must come back through metadata-first recovery.
kill -9 "${PID_OF[0]}"
for i in $(seq 1 200); do
    if [ "$(cli get 1 2>/dev/null || true)" = hello ]; then break; fi
    if [ "$i" = 200 ]; then echo "FAIL: key lost after node kill"; exit 1; fi
    sleep 0.1
done
cli put 3 post-failover > /dev/null
[ "$(cli get 3)" = post-failover ]

# Graceful teardown: every surviving server must exit 0 and flush one
# JSON stats line to stderr.
status=0
for who in 1 2 3 leader; do kill -TERM "${PID_OF[$who]}"; done
for who in 1 2 3 leader; do
    if ! wait "${PID_OF[$who]}"; then
        echo "FAIL: $who exited unclean"
        status=1
    fi
done
wait "${PID_OF[0]}" 2> /dev/null || true # the murdered node
for who in 1 2 3 leader; do
    f="$WORK/node$who.err"
    [ "$who" = leader ] && f="$WORK/leader.err"
    if ! grep -q '"role"' "$f"; then
        echo "FAIL: no JSON stats from $who:"
        cat "$f"
        status=1
    fi
done

[ "$status" = 0 ] && echo "server smoke: ok"
exit "$status"
