//! Acceptance-level chaos soak (see DESIGN.md, "Chaos & consistency
//! checking"): >= 10k seeded YCSB-style ops against a live cluster
//! serving REP3 and SRS(3,2) memgests while the nemesis injects message
//! drops, duplicates, delays, transient partitions and node crashes
//! with spare promotion. The recorded history must check out as
//! linearizable per key, and the seeded schedule must be bit-identical
//! across same-seed constructions.

use ring_chaos::{run_soak, SoakConfig};

const SEED: u64 = 0x52_49_4E_47; // "RING"

#[test]
fn acceptance_soak_is_linearizable_under_full_nemesis() {
    let cfg = SoakConfig::acceptance(SEED);
    assert!(cfg.clients * cfg.ops_per_client >= 10_000);
    let report = run_soak(&cfg);
    assert!(
        report.passed(),
        "chaos soak failed — replay with seed {:#x}: {:?}",
        report.seed,
        report.checker
    );
    // The nemesis really ran: every fault class fired.
    assert!(report.partitions >= 1, "seed {:#x}", report.seed);
    assert!(report.crashes >= 1, "seed {:#x}", report.seed);
    let (decided, dropped, duplicated, delayed) = report.message_faults;
    assert!(dropped > 0, "no drops in {decided} decisions");
    assert!(duplicated > 0, "no duplicates in {decided} decisions");
    assert!(delayed > 0, "no delays in {decided} decisions");
    // Every scripted op plus preload plus the final read pass is in the
    // checked history.
    let scripted = cfg.clients * cfg.ops_per_client;
    assert_eq!(report.ops, scripted + 2 * cfg.keys as usize);
}

#[test]
fn same_seed_reproduces_the_schedule_bit_identically() {
    let a = SoakConfig::acceptance(SEED).schedule_digest();
    let b = SoakConfig::acceptance(SEED).schedule_digest();
    assert_eq!(a, b, "same seed must give the same schedule digest");
    let c = SoakConfig::acceptance(SEED + 1).schedule_digest();
    assert_ne!(a, c, "different seeds must give different schedules");
}
