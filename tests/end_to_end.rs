//! Cross-crate integration tests: workload generators driving the full
//! KVS, coding-layer agreement with the cluster data plane, and the
//! reliability models cross-checked against the combinatorial code
//! properties.

use std::collections::HashMap;
use std::time::Duration;

use ring_repro::erasure::SrsCode;
use ring_repro::kvs::{Cluster, ClusterSpec};
use ring_repro::net::LatencyModel;
use ring_repro::reliability::{nines, srs_chain, ModelParams};
use ring_repro::workload::{KeyDistribution, Op, WorkloadGen, WorkloadSpec};

fn fast_cluster(spares: usize) -> Cluster {
    Cluster::start(ClusterSpec {
        latency: LatencyModel::instant(),
        spares,
        fail_timeout: Duration::from_millis(150),
        ..ClusterSpec::paper_evaluation()
    })
}

#[test]
fn ycsb_workload_matches_model() {
    // Run a mixed YCSB workload against the cluster and a HashMap model
    // side by side; every get must agree with the model.
    let cluster = fast_cluster(0);
    let mut client = cluster.client();
    let spec = WorkloadSpec {
        key_count: 200,
        value_len: 128,
        get_ratio: 0.5,
        distribution: KeyDistribution::Zipfian,
    };
    let mut gen = WorkloadGen::new(spec, 99);
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut seq = 0u8;
    for op in gen.batch(3_000) {
        match op {
            Op::Put { key, value_len } => {
                seq = seq.wrapping_add(1);
                let value = vec![seq; value_len];
                // Scheme picked per key so every memgest participates.
                client.put_to(key, &value, (key % 7) as u32).unwrap();
                model.insert(key, value);
            }
            Op::Get { key } => match model.get(&key) {
                Some(expect) => assert_eq!(&client.get(key).unwrap(), expect, "key {key}"),
                None => assert!(client.get(key).is_err(), "key {key} must be absent"),
            },
        }
    }
    cluster.shutdown();
}

#[test]
fn moves_under_workload_preserve_values() {
    let cluster = fast_cluster(0);
    let mut client = cluster.client();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    for key in 0..100u64 {
        let value = key.to_be_bytes().repeat(8);
        client.put_to(key, &value, 0).unwrap();
        model.insert(key, value);
    }
    // Shuffle every key through three schemes.
    for round in 1..=3u64 {
        for key in 0..100u64 {
            client.move_key(key, ((key + round) % 7) as u32).unwrap();
        }
    }
    for (key, expect) in &model {
        assert_eq!(&client.get(*key).unwrap(), expect);
    }
    cluster.shutdown();
}

#[test]
fn full_stack_failure_with_erasure_decode() {
    // Store YCSB data erasure-coded, kill the coordinator, and verify
    // the promoted spare serves every value through online decode.
    let cluster = fast_cluster(1);
    let mut client = cluster.client();
    let mut victims: Vec<(u64, Vec<u8>)> = Vec::new();
    for key in 0..120u64 {
        let value = vec![(key * 3 % 251) as u8; 512];
        client.put_to(key, &value, 6).unwrap(); // SRS(3,2).
        if cluster.coordinator_of(key) == 0 {
            victims.push((key, value));
        }
    }
    assert!(victims.len() > 10, "expect a fair share of keys on node 0");
    cluster.kill(0);
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    for (key, expect) in victims {
        loop {
            match client.get(key) {
                Ok(v) => {
                    assert_eq!(v, expect, "key {key}");
                    break;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("key {key} unrecoverable: {e}"),
            }
        }
    }
    cluster.shutdown();
}

#[test]
fn reliability_model_agrees_with_code_combinatorics() {
    // The CTMC's branch probabilities come from SrsCode enumeration;
    // check the derived chain properties against direct combinatorics
    // for a few codes.
    let params = ModelParams::default();
    for (k, m, s) in [(2usize, 1usize, 4usize), (3, 2, 6), (3, 1, 5)] {
        let code = SrsCode::new(k, m, s).unwrap();
        let chain = srs_chain(k, m, s, &params);
        // The chain has (max tolerable failures + 1) functional states.
        let u = (0..=s + m)
            .take_while(|&i| code.survivable_fraction(i) > 0.0)
            .count();
        assert_eq!(chain.ctmc().states(), u + 1, "SRS({k},{m},{s})");
        // Reliability must sit strictly between 0 and 1 and beat the
        // unreliable scheme trivially.
        let r = chain.annual_reliability();
        assert!(r > 0.9 && r < 1.0, "SRS({k},{m},{s}): {r}");
    }
}

#[test]
fn stretched_families_share_reliability_band() {
    let params = ModelParams::default();
    for k in 2..=4usize {
        for m in 1..k {
            let base = nines(srs_chain(k, m, k, &params).annual_reliability());
            for s in k..=7 {
                let stretched = nines(srs_chain(k, m, s, &params).annual_reliability());
                assert!(
                    (stretched - base).abs() < 1.2,
                    "SRS({k},{m},{s}) drifts: {stretched} vs {base}"
                );
            }
        }
    }
}

#[test]
fn storage_overheads_of_coding_match_kvs_accounting() {
    // The erasure layer's overhead formula matches the scheme
    // descriptor's accounting used by the examples and cost model.
    use ring_repro::kvs::Scheme;
    for (k, m, s) in [(2usize, 1usize, 3usize), (3, 2, 3), (3, 1, 6)] {
        let code = SrsCode::new(k, m, s).unwrap();
        let scheme = Scheme::Srs { k, m };
        assert!((code.storage_overhead() - scheme.storage_overhead(s)).abs() < 1e-12);
    }
}

#[test]
fn workload_distributions_drive_distinct_key_patterns() {
    // Zipfian concentrates ops, uniform spreads them — verified through
    // the cluster by counting per-shard coordinator load.
    let cluster = fast_cluster(0);
    let mut zipf = WorkloadGen::new(
        WorkloadSpec {
            key_count: 1000,
            value_len: 8,
            get_ratio: 0.0,
            distribution: KeyDistribution::Zipfian,
        },
        5,
    );
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for op in zipf.batch(5_000) {
        *counts.entry(op.key()).or_default() += 1;
    }
    let max = counts.values().copied().max().unwrap();
    assert!(max > 250, "zipfian hot key should dominate: {max}");
    cluster.shutdown();
}
