//! Umbrella crate for the Ring reproduction: re-exports every workspace
//! crate so examples and integration tests can reach the full system
//! through one dependency.
//!
//! See the README for the repository layout and DESIGN.md for the
//! system inventory.

pub use ring_erasure as erasure;
pub use ring_gf as gf;
pub use ring_kvs as kvs;
pub use ring_net as net;
pub use ring_reliability as reliability;
pub use ring_workload as workload;
