//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `rand` it uses: the [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits, seedable [`rngs::StdRng`]/[`rngs::SmallRng`]
//! generators (xoshiro256** under the hood), uniform `gen_range`,
//! `gen`, `gen_bool`, and [`seq::SliceRandom`] shuffling. All output is
//! a pure function of the seed — there is no `thread_rng` and no OS
//! entropy on purpose: every run in this repo must be reproducible from
//! a printed `u64` seed (see DESIGN.md §"Chaos & consistency checking").

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly "at large" by [`Rng::gen`] (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` is irrelevant for tests but cheap to avoid.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as u128;
                (self.start as u128).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let hi = (u128::from(rng.next_u64()) * span) >> 64;
                (start as u128).wrapping_add(hi) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// The seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_bytes(seed: [u8; 32]) -> Xoshiro256 {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // Avoid the all-zero state, which is a fixed point.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic seedable generator (API-compatible with
    /// `rand::rngs::StdRng`; implemented as xoshiro256**, so streams
    /// differ from upstream `rand` but are stable for this repo).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.0.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> StdRng {
            StdRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    /// Small fast seedable generator (API-compatible with
    /// `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.0.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(mut seed: [u8; 32]) -> SmallRng {
            // Distinct stream from StdRng for the same seed (byte 8
            // feeds s[1], which alone determines the first output).
            seed[8] ^= 0xA5;
            SmallRng(Xoshiro256::from_seed_bytes(seed))
        }
    }
}

/// Slice utilities (the `rand::seq` subset the repo uses).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl<R: super::RngCore> NextPub for R {
        fn next_u64_pub(&mut self) -> u64 {
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn small_and_std_streams_differ() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
