//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io (so no `syn`/
//! `quote` either); this crate hand-parses the item's `TokenStream` to
//! extract just what the workspace derives need: structs with named
//! fields and enums with unit variants. `#[derive(Serialize)]` emits an
//! `impl serde::Serialize` writing compact JSON; `#[derive(Deserialize)]`
//! expands to nothing (the workspace only ever deserializes through
//! `serde_json::Value`, never into derived types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (compact-JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item.kind {
        ItemKind::Struct { fields } => emit_struct(&item.name, &fields),
        ItemKind::Enum { variants } => emit_enum(&item.name, &variants),
    };
    code.parse().expect("derived impl parses")
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing: no code in
/// this workspace deserializes into derived types (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum ItemKind {
    Struct { fields: Vec<String> },
    Enum { variants: Vec<String> },
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut is_enum = None;

    // Skip attributes / visibility until the `struct` / `enum` keyword.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "struct" => {
                    is_enum = Some(false);
                    break;
                }
                "enum" => {
                    is_enum = Some(true);
                    break;
                }
                _ => {}
            }
        }
    }
    let is_enum = is_enum.expect("derive target is a struct or enum");

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };

    // No generic derive targets exist in this workspace; fail loudly
    // rather than emit a broken impl if one appears.
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }

    let body = tokens
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            TokenTree::Punct(p) if p.as_char() == ';' => {
                panic!("serde shim derive does not support tuple/unit structs ({name})")
            }
            _ => None,
        })
        .expect("item has a braced body");

    let kind = if is_enum {
        ItemKind::Enum {
            variants: parse_unit_variants(body, &name),
        }
    } else {
        ItemKind::Struct {
            fields: parse_named_fields(body, &name),
        }
    };
    Item { name, kind }
}

/// Extracts field names from `field: Type, ...` (attributes, `pub`, and
/// generic argument lists in types are skipped; commas nested in `<>`
/// do not terminate a field).
fn parse_named_fields(body: TokenStream, name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip `#[...]` attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the bracketed attribute group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next(); // `pub(crate)` etc.
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("serde shim derive: unexpected token in fields of {name}: {tt:?}")
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field in {name}, got {other:?}"),
        }
        // Skip the type up to a top-level comma.
        let mut angle = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Extracts variant names, rejecting any variant carrying data.
fn parse_unit_variants(body: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            panic!("serde shim derive: unexpected token in enum {name}: {tt:?}")
        };
        variants.push(variant.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!(
                "serde shim derive: only unit variants are supported in {name}, got {other:?}"
            ),
        }
    }
    variants
}

fn emit_struct(name: &str, fields: &[String]) -> String {
    let mut body = String::from("out.push('{');\n");
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "::serde::write_json_string(out, \"{field}\");\nout.push(':');\n\
             ::serde::Serialize::serialize_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    )
}

fn emit_enum(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => \"{v}\",\n"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         let label = match self {{\n{arms}}};\n\
         ::serde::write_json_string(out, label);\n}}\n}}"
    )
}
