//! Offline stand-in for `serde_json`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of serde_json it uses: [`to_string`] /
//! [`to_string_pretty`] over the `serde` shim's `Serialize` (2-space
//! indentation, matching upstream's pretty format), a [`Value`] tree
//! with the accessors the report generator calls, and [`from_str`]
//! parsing JSON text into a [`Value`].

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; the workspace's numbers are
    /// well inside the exactly-representable integer range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup on objects; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64` if it is a whole number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The backing vector if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]`; yields `Null` for missing keys or non-objects
    /// (matching serde_json).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `value[i]`; yields `Null` out of bounds or on non-arrays.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Parse or serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

fn err<T>(message: impl Into<String>) -> Result<T, Error> {
    Err(Error {
        message: message.into(),
    })
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as pretty JSON with 2-space indentation (the
/// upstream serde_json pretty format).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Reformats machine-generated compact JSON with 2-space indentation.
fn prettify(compact: &str) -> String {
    let bytes = compact.as_bytes();
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0;
    let indent = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                let close = if c == '{' { b'}' } else { b']' };
                if i + 1 < bytes.len() && bytes[i + 1] == close {
                    out.push(c);
                    out.push(close as char);
                    i += 2;
                    continue;
                }
                out.push(c);
                depth += 1;
                indent(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                indent(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            _ => out.push(c),
        }
        i += 1;
    }
    out
}

/// Parses JSON text into a [`Value`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error {
                                    message: "bad \\u escape".into(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error {
                                message: "bad \\u escape".into(),
                            })?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writers; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(|_| Error {
                        message: "invalid UTF-8 in string".into(),
                    })?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => err(format!("bad number `{text}`")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_format() {
        assert_eq!(
            to_string_pretty(&vec![1, 2, 3]).unwrap(),
            "[\n  1,\n  2,\n  3\n]"
        );
        #[derive(serde::Serialize)]
        struct Row {
            a: u32,
            b: Vec<u32>,
        }
        assert_eq!(
            to_string_pretty(&Row { a: 1, b: vec![] }).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": []\n}"
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"[{"scheme":"REP3","median_us":12.5,"n":3,"ok":true,"note":null,"samples":[{"x":1}]}]"#;
        let v = from_str(text).unwrap();
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.get("scheme").and_then(Value::as_str), Some("REP3"));
        assert_eq!(r.get("median_us").and_then(Value::as_f64), Some(12.5));
        assert_eq!(r["n"].as_u64(), Some(3));
        assert_eq!(r["ok"].as_bool(), Some(true));
        assert_eq!(r["note"], Value::Null);
        assert_eq!(r["samples"][0]["x"].as_u64(), Some(1));
        assert_eq!(r["missing"], Value::Null);
    }

    #[test]
    fn parse_escapes_and_ws() {
        let v = from_str(" { \"a\\n\" : \"x\\u0041\" } ").unwrap();
        assert_eq!(v.get("a\n").and_then(Value::as_str), Some("xA"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn pretty_then_parse() {
        let pretty = to_string_pretty(&vec![vec![1u32, 2], vec![]]).unwrap();
        let v = from_str(&pretty).unwrap();
        assert_eq!(v[0][1].as_u64(), Some(2));
        assert_eq!(v[1].as_array().unwrap().len(), 0);
    }
}
