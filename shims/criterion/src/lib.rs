//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the benchmark-harness subset its `[[bench]]` targets use
//! (`harness = false` binaries): [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical
//! machinery it runs a fixed warm-up then a measured loop and prints
//! mean time per iteration (and MiB/s when a throughput is set) — good
//! enough to eyeball regressions, not a statistics suite.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the timed loop.
pub struct Bencher {
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    measure: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~10% of the measurement window.
        let warm_until = Instant::now() + self.measure / 10;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let stop_at = start + self.measure;
        let mut iters: u64 = 0;
        loop {
            black_box(routine());
            iters += 1;
            // Check the clock every few iterations to keep overhead low.
            if iters.is_multiple_of(16) && Instant::now() >= stop_at {
                break;
            }
        }
        self.mean = start.elapsed() / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark taking an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mean: Duration::ZERO,
            measure: self.criterion.measure,
        };
        f(&mut bencher, input);
        self.report(&id.label, bencher.mean);
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mean: Duration::ZERO,
            measure: self.criterion.measure,
        };
        f(&mut bencher);
        self.report(&id.label, bencher.mean);
    }

    /// Ends the group (printing is per-benchmark; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}

    fn report(&self, label: &str, mean: Duration) {
        let per_iter = mean.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
                format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.0} elem/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{label:<28} {:>12.3} µs/iter{rate}",
            self.name,
            per_iter * 1e6
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Short window: CI runs these as smoke benchmarks, not studies.
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Criterion {
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            throughput: None,
        };
        group.bench_function(id, f);
    }
}

/// Bundles benchmark functions under one name for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_test");
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("add", 8), &8u64, |b, &n| {
            b.iter(|| black_box(n) + 1);
        });
        group.bench_function("mul", |b| b.iter(|| black_box(3u64) * 7));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        benches();
    }
}
