//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the property-testing subset its test suites use: the
//! [`Strategy`] trait (ranges, `any`, tuples, `prop_map`, `Just`,
//! [`collection::vec`]), the [`proptest!`] test macro with optional
//! `#![proptest_config(...)]`, and [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! Unlike upstream there is no shrinking: a failing case reports its
//! case index, its seed, and the failed assertion, and the whole run is
//! reproducible by setting `PROPTEST_SEED=<u64>` (every run is already
//! deterministic for a fixed seed; the default seed is fixed too, per
//! this repo's everything-reproducible-from-a-printed-seed policy).

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic generator handed to strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + u128::from(rng.below(span))) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start as u128 == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128 - start as u128 + 1) as u64;
                (start as u128 + u128::from(rng.below(span))) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                if self.start == 0 {
                    return rng.next_u64() as $t;
                }
                let span = (<$t>::MAX as u128 - self.start as u128 + 1) as u64;
                (self.start as u128 + u128::from(rng.below(span))) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

/// Types with a full-domain [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: the workspace's properties do arithmetic.
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy over the whole domain of `T` (`any::<u8>()` etc.).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Creates an [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy yielding `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`cases` is the only knob this shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Executes one property across `config.cases` seeded cases, panicking
/// with the case seed on the first failure. Called by [`proptest!`].
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), String>,
) {
    let base_seed = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got `{v}`")),
        // Fixed default: runs are reproducible without any setup.
        Err(_) => 0x5EED_0000_0000_0000,
    };
    // Mix in the test name so properties in one file see distinct data.
    let mut name_hash = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        name_hash = (name_hash ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    for i in 0..config.cases {
        let case_seed = base_seed ^ name_hash ^ (u64::from(i) << 1);
        let mut rng = TestRng::new(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        let fail = |detail: String| {
            panic!(
                "proptest `{test_name}` failed at case {i}/{} (PROPTEST_SEED={base_seed}, case seed {case_seed:#x}): {detail}",
                config.cases
            )
        };
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => fail(msg),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic (non-string payload)".into());
                fail(format!("panicked: {msg}"));
            }
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body across seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            $crate::run_cases($config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code, clippy::diverging_sub_expression)]
                (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq!({}, {}) failed: left = {:?}, right = {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq!({}, {}) failed: left = {:?}, right = {:?}: {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne!({}, {}) failed: both = {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = TestRng::new(8);
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
        }
        let empty_ok = collection::vec(any::<u8>(), 0..1).generate(&mut rng);
        assert!(empty_ok.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(99);
            (0..50)
                .map(|_| (0u64..1_000_000).generate(&mut rng))
                .collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(99);
            (0..50)
                .map(|_| (0u64..1_000_000).generate(&mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0u32..10, 0u32..10), flip in any::<bool>()) {
            let sum = a + b;
            prop_assert!(sum < 20);
            if flip {
                prop_assert_eq!(sum, a + b, "with message {}", sum);
            }
        }

        #[test]
        fn prop_map_applies(v in (1u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert_ne!(v, 1);
        }
    }

    #[test]
    #[should_panic(expected = "prop_assert!")]
    fn failing_property_reports_seed() {
        crate::run_cases(ProptestConfig::with_cases(4), "demo", |rng| {
            let v = (0u64..100).generate(rng);
            crate::prop_assert!(v > 1_000, "v = {}", v);
            Ok(())
        });
    }
}
