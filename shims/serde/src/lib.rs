//! Offline stand-in for `serde` (serialization only).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of serde it uses: a [`Serialize`] trait that
//! writes compact JSON directly (consumed by the `serde_json` shim's
//! `to_string_pretty`), implementations for the primitive and container
//! types the repo serializes, and re-exported `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` macros from the `serde_derive` shim.
//! Deserialization into typed values is intentionally absent — all
//! reads in the workspace go through `serde_json::Value`.

// Lets the `::serde::...` paths emitted by the derive macros resolve
// when the derives are used inside this crate's own tests.
extern crate self as serde;

// The derive macros live in the macro namespace, the trait below in the
// type namespace; `use serde::Serialize` imports both under one name,
// exactly like real serde.
pub use serde_derive::{Deserialize, Serialize};

/// A value that can render itself as compact JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Writes `s` as a JSON string literal (with escaping) into `out`.
/// Public because the derive-generated code calls it.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], *self as i128));
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Formats an integer without allocating (all workspace ints fit i128).
fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if !self.is_finite() {
            // JSON has no NaN/Inf; serde_json errors here, we degrade to null.
            out.push_str("null");
        } else if self.fract() == 0.0 && self.abs() < 1e15 {
            // Match serde_json's "1.0" (not "1") for whole floats.
            out.push_str(&format!("{self:.1}"));
        } else {
            out.push_str(&format!("{self}"));
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(42u64), "42");
        assert_eq!(json(-7i32), "-7");
        assert_eq!(json(true), "true");
        assert_eq!(json(1.0f64), "1.0");
        assert_eq!(json(1.5f64), "1.5");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(json(Vec::<u32>::new()), "[]");
        assert_eq!(json(Some("x")), "\"x\"");
        assert_eq!(json(Option::<u32>::None), "null");
    }

    #[test]
    fn derive_struct_and_enum() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            count: u64,
            ratio: f64,
            nested: Inner,
        }
        #[derive(Serialize)]
        struct Inner {
            flag: bool,
        }
        #[derive(Serialize)]
        enum Kind {
            Hot,
            Cold,
        }
        let row = Row {
            name: "x".into(),
            count: 3,
            ratio: 0.5,
            nested: Inner { flag: true },
        };
        assert_eq!(
            json(&row),
            "{\"name\":\"x\",\"count\":3,\"ratio\":0.5,\"nested\":{\"flag\":true}}"
        );
        assert_eq!(json(Kind::Hot), "\"Hot\"");
        assert_eq!(json(Kind::Cold), "\"Cold\"");
    }

    #[test]
    fn derive_deserialize_is_accepted() {
        #[derive(super::Deserialize)]
        #[allow(dead_code)]
        struct Ignored {
            a: u32,
        }
    }
}
