//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `parking_lot` API the repo uses —
//! [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning guards —
//! implemented over `std::sync`. Poisoned locks are transparently
//! recovered (`parking_lot` has no poisoning), which is the behaviour
//! the callers rely on.

use std::sync::TryLockError;
use std::time::Instant;

/// A mutex whose `lock` returns the guard directly (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Wraps the std guard in an `Option` so that
/// [`Condvar::wait`] can move it through `std::sync::Condvar::wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out() || *done);
        }
        t.join().unwrap();
        assert!(*done);
    }
}
