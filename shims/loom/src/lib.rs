//! Offline stand-in for the `loom` crate (API subset).
//!
//! The build environment has no access to crates.io, so this shim
//! provides loom's surface — [`model`], `loom::thread`, `loom::sync`,
//! `loom::sync::atomic`, `loom::hint` — implemented as **seeded stress
//! testing** rather than exhaustive schedule exploration: [`model`]
//! runs the closure many times (default 300, `LOOM_STRESS_ITERS` to
//! override) over real OS threads, and every synchronization operation
//! routed through these wrappers is a potential preemption point where
//! the scheduler is randomly perturbed (yield or short sleep, driven by
//! a splitmix64 stream seeded per iteration).
//!
//! **Honest limits versus real loom**: this shim does not enumerate all
//! interleavings, cannot simulate weak-memory reorderings beyond what
//! the host CPU exhibits, and has no `loom::cell::UnsafeCell` access
//! tracking. It *does* shake out ordering bugs whose failure window is
//! widened by forced preemption at sync points — lost wakeups, broken
//! publish/observe pairs, double drops — and it keeps the models in
//! `crates/verify/tests/loom.rs` source-compatible with real loom, so
//! swapping in the genuine crate (when a registry is available) needs
//! only a Cargo.toml change.

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Per-process schedule-perturbation state. Seeded by [`model`] for
/// each iteration; every wrapper op advances it.
static SCHEDULE: AtomicU64 = AtomicU64::new(0x5249_4E47_4C4F_4F4D); // "RINGLOOM"

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Randomly perturbs the scheduler. Called before every operation on
/// the wrapped sync primitives so thread interleavings vary between
/// iterations far more than under an unperturbed OS scheduler.
pub(crate) fn preemption_point() {
    let x = SCHEDULE.fetch_add(0x9E37_79B9_7F4A_7C15, StdOrdering::Relaxed);
    let z = splitmix(x);
    match z % 16 {
        0..=3 => std::thread::yield_now(),
        4 => std::thread::sleep(std::time::Duration::from_micros(z >> 32 & 0x1F)),
        _ => {}
    }
}

/// Runs `f` repeatedly under schedule perturbation. Real loom explores
/// interleavings exhaustively; this shim samples them. Panics inside
/// `f` (including assertion failures on any spawned thread joined by
/// `f`) propagate and fail the test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    for i in 0..iters {
        SCHEDULE.store(splitmix(i ^ 0x52_49_4E_47), StdOrdering::SeqCst);
        f();
    }
}

pub mod thread {
    //! `loom::thread` — spawn/join with preemption on spawn and join.

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, propagating panics as `Err`.
        pub fn join(self) -> std::thread::Result<T> {
            super::preemption_point();
            self.0.join()
        }
    }

    /// Spawns a thread participating in the model.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::preemption_point();
        JoinHandle(std::thread::spawn(move || {
            super::preemption_point();
            f()
        }))
    }

    /// Yields the current thread (a scheduling point in real loom).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod hint {
    //! `loom::hint` — spin-loop hint that is also a preemption point.

    /// Spin-loop hint; under the shim this may yield, which is what
    /// keeps stress-tested spin loops from monopolizing a core.
    pub fn spin_loop() {
        super::preemption_point();
        std::hint::spin_loop();
    }
}

pub mod sync {
    //! `loom::sync` — `Arc`, `Mutex`, `Condvar` wrappers.

    pub use std::sync::Arc;
    pub use std::sync::{LockResult, MutexGuard, WaitTimeoutResult};

    /// Mutex whose lock acquisitions are preemption points.
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(t: T) -> Self {
            Mutex(std::sync::Mutex::new(t))
        }

        /// Acquires the lock (a preemption point on both sides).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            super::preemption_point();
            let g = self.0.lock();
            super::preemption_point();
            g
        }

        /// Attempts the lock without blocking.
        pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
            super::preemption_point();
            self.0.try_lock()
        }
    }

    /// Condvar whose wait/notify edges are preemption points.
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates a new condition variable.
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        /// Blocks until notified.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            super::preemption_point();
            self.0.wait(guard)
        }

        /// Blocks until notified or `dur` elapses. Real loom lacks
        /// timed waits; the shim offers one so models of code using
        /// `wait_timeout` (the Mailbox) can bound a lost-wakeup hang
        /// instead of deadlocking the test.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            super::preemption_point();
            self.0.wait_timeout(guard, dur)
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            super::preemption_point();
            self.0.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            super::preemption_point();
            self.0.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    pub mod atomic {
        //! `loom::sync::atomic` — atomics whose every access is a
        //! preemption point.

        pub use std::sync::atomic::Ordering;

        /// `AtomicUsize` wrapper; every access is a preemption point.
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            /// Creates a new atomic.
            pub fn new(v: usize) -> Self {
                AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
            }
            /// Atomic load.
            pub fn load(&self, o: Ordering) -> usize {
                crate::preemption_point();
                self.0.load(o)
            }
            /// Atomic store.
            pub fn store(&self, v: usize, o: Ordering) {
                crate::preemption_point();
                self.0.store(v, o)
            }
            /// Atomic fetch-add; returns the previous value.
            pub fn fetch_add(&self, v: usize, o: Ordering) -> usize {
                crate::preemption_point();
                self.0.fetch_add(v, o)
            }
            /// Atomic fetch-sub; returns the previous value.
            pub fn fetch_sub(&self, v: usize, o: Ordering) -> usize {
                crate::preemption_point();
                self.0.fetch_sub(v, o)
            }
            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                cur: usize,
                new: usize,
                ok: Ordering,
                err: Ordering,
            ) -> Result<usize, usize> {
                crate::preemption_point();
                self.0.compare_exchange(cur, new, ok, err)
            }
        }

        /// `AtomicU64` wrapper; every access is a preemption point.
        pub struct AtomicU64(std::sync::atomic::AtomicU64);

        impl AtomicU64 {
            /// Creates a new atomic.
            pub fn new(v: u64) -> Self {
                AtomicU64(std::sync::atomic::AtomicU64::new(v))
            }
            /// Atomic load.
            pub fn load(&self, o: Ordering) -> u64 {
                crate::preemption_point();
                self.0.load(o)
            }
            /// Atomic store.
            pub fn store(&self, v: u64, o: Ordering) {
                crate::preemption_point();
                self.0.store(v, o)
            }
            /// Atomic fetch-add; returns the previous value.
            pub fn fetch_add(&self, v: u64, o: Ordering) -> u64 {
                crate::preemption_point();
                self.0.fetch_add(v, o)
            }
        }

        /// `AtomicBool` wrapper; every access is a preemption point.
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic.
            pub fn new(v: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }
            /// Atomic load.
            pub fn load(&self, o: Ordering) -> bool {
                crate::preemption_point();
                self.0.load(o)
            }
            /// Atomic store.
            pub fn store(&self, v: bool, o: Ordering) {
                crate::preemption_point();
                self.0.store(v, o)
            }
            /// Atomic swap; returns the previous value.
            pub fn swap(&self, v: bool, o: Ordering) -> bool {
                crate::preemption_point();
                self.0.swap(v, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_and_counts() {
        let total = Arc::new(AtomicUsize::new(0));
        let t = total.clone();
        std::env::set_var("LOOM_STRESS_ITERS", "10");
        super::model(move || {
            t.fetch_add(1, Ordering::SeqCst);
        });
        std::env::remove_var("LOOM_STRESS_ITERS");
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn threads_join() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }
}
